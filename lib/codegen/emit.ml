(* The Assembly Kernel Generator and the Template Optimizer driver
   (paper Figure 2 and section 2.4).  Takes a template-annotated kernel
   and an architecture specification, and produces a complete x86-64
   assembly implementation:

     - template-tagged regions are handed to the specialized optimizers
       (sections 3.1-3.6): SIMD vectorization by the Vdup / Shuf /
       elementwise strategies, per-array register queues, FMA3/FMA4 or
       Mul+Add instruction selection;
     - the rest of the low-level C (loop control, pointer updates,
       prefetches, leftover scalar code) is translated in a
       straightforward fashion;
     - the variable-to-register map (reg_table) is shared between
       regions and plain code, keeping allocation decisions consistent.

   Values live as follows: int scalars and pointers in general-purpose
   registers (spillable to stack home slots), double scalars in SIMD
   register lanes (never spilled), vector accumulators in SIMD
   registers bound lane-per-scalar according to the [Plan]. *)

module SS = Set.Make (String)

open Augem_ir
open Augem_machine
open Augem_templates
module T = Template
module M = Matcher

open Ctx

type options = {
  prefer : Plan.prefer;
  max_width : Insn.vwidth option; (* cap vector width (None = machine) *)
}

let default_options = { prefer = Plan.Prefer_auto; max_width = None }

type state = {
  ctx : Ctx.t;
  plan : Plan.t;
  (* concrete accumulator registers per plan (keyed by first res var) *)
  accs : (string, int array * bool array) Hashtbl.t;
  mutable assigned_vars : SS.t; (* scalars ever assigned: not memoizable *)
  mutable vec_width : Insn.vwidth; (* widest width used (for vzeroupper) *)
  mutable used_256 : bool;
}

let machine_lanes (opts : options) (arch : Arch.t) =
  let base = Arch.simd_lanes arch in
  match opts.max_width with
  | None -> base
  | Some w -> min base (Insn.lanes w)

(* ---------------------------------------------------------------------- *)
(* integer expression evaluation                                           *)
(* ---------------------------------------------------------------------- *)

let pure_expr st e =
  List.for_all (fun v -> not (SS.mem v st.assigned_vars)) (Ast.expr_vars e)

(* Evaluate an integer expression into an owned temporary register.
   Pure parameter expressions are memoized in synthetic variables. *)
let rec eval_int st (e : Ast.expr) : Reg.gpr =
  let ctx = st.ctx in
  match Simplify.simplify_expr e with
  | Ast.Int_lit n ->
      let r = Gpralloc.alloc_temp ctx.gprs () in
      emit ctx (Insn.Movri (r, n));
      r
  | Ast.Var v ->
      let src = Gpralloc.get ctx.gprs v in
      let r = Gpralloc.alloc_temp ctx.gprs ~avoid:[ src ] () in
      emit ctx (Insn.Movrr (r, src));
      r
  | Ast.Binop (op, a, b) as expr -> (
      (* reuse a hoisted loop invariant when one is in scope; never
         create memo definitions here (only [prematerialize] may — its
         definitions dominate their uses) *)
      let memo_name = "$" ^ Pp.expr_to_string expr in
      if
        pure_expr st expr
        && Ast.expr_size expr > 2
        && Gpralloc.is_defined ctx.gprs memo_name
      then begin
        let src = Gpralloc.get ctx.gprs memo_name in
        let r = Gpralloc.alloc_temp ctx.gprs ~avoid:[ src ] () in
        emit ctx (Insn.Movrr (r, src));
        r
      end
      else
        let ra = eval_int st a in
        match (op, Simplify.simplify_expr b) with
        | Ast.Add, Ast.Int_lit n ->
            emit ctx (Insn.Addri (ra, n));
            ra
        | Ast.Sub, Ast.Int_lit n ->
            emit ctx (Insn.Subri (ra, n));
            ra
        | Ast.Mul, Ast.Int_lit n ->
            emit ctx (Insn.Imulri (ra, ra, n));
            ra
        | _, b ->
            let rb = eval_int st b in
            (match op with
            | Ast.Add -> emit ctx (Insn.Addrr (ra, rb))
            | Ast.Sub -> emit ctx (Insn.Subrr (ra, rb))
            | Ast.Mul -> emit ctx (Insn.Imulrr (ra, rb))
            | Ast.Div -> err "integer division is not supported by codegen");
            Gpralloc.free_temp ctx.gprs rb;
            ra)
  | Ast.Neg a ->
      let ra = eval_int st a in
      emit ctx (Insn.Negr ra);
      ra
  | Ast.Double_lit _ | Ast.Index _ ->
      err "expected an integer expression"

(* Memoize a pure parameter expression in a synthetic variable: it is
   computed once, immediately stored to its home slot (so loop
   spill/invalidate discipline never recomputes it), and reloaded like
   any variable afterwards. *)
and memoized st expr : Reg.gpr =
  let ctx = st.ctx in
  let name = "$" ^ Pp.expr_to_string expr in
  if Gpralloc.is_defined ctx.gprs name then begin
    let src = Gpralloc.get ctx.gprs name in
    let r = Gpralloc.alloc_temp ctx.gprs ~avoid:[ src ] () in
    emit ctx (Insn.Movrr (r, src));
    r
  end
  else begin
    let r =
      match expr with
      | Ast.Binop (op, a, b) ->
          let ra = eval_int st a in
          (match (op, Simplify.simplify_expr b) with
          | Ast.Add, Ast.Int_lit n -> emit ctx (Insn.Addri (ra, n))
          | Ast.Sub, Ast.Int_lit n -> emit ctx (Insn.Subri (ra, n))
          | Ast.Mul, Ast.Int_lit n -> emit ctx (Insn.Imulri (ra, ra, n))
          | _, b ->
              let rb = eval_int st b in
              (match op with
              | Ast.Add -> emit ctx (Insn.Addrr (ra, rb))
              | Ast.Sub -> emit ctx (Insn.Subrr (ra, rb))
              | Ast.Mul -> emit ctx (Insn.Imulrr (ra, rb))
              | Ast.Div -> err "integer division is not supported");
              Gpralloc.free_temp ctx.gprs rb);
          ra
      | _ -> eval_int st expr
    in
    (* persist: give the synthetic var a home and store it clean *)
    let s = Gpralloc.state ctx.gprs name in
    let off = Gpralloc.home_slot ctx.gprs s in
    emit ctx (Insn.Storeq (Insn.mem ~disp:off Reg.Rbp, r));
    r
  end

(* ---------------------------------------------------------------------- *)
(* addressing                                                              *)
(* ---------------------------------------------------------------------- *)

(* Build a memory operand for element [base[idx]] (8-byte doubles) and
   pass it to [k]; index temporaries are freed afterwards. *)
let with_addr st (base : string) (idx : Ast.expr) (k : Insn.mem -> unit) : unit
    =
  let ctx = st.ctx in
  let rb = Gpralloc.get ctx.gprs base in
  match Simplify.simplify_expr idx with
  | Ast.Int_lit n -> k (Insn.mem ~disp:(8 * n) rb)
  | e -> (
      match Poly.of_expr e with
      | Some p ->
          let c = match Poly.Mmap.find_opt [] p with Some c -> c | None -> 0 in
          let rest = Poly.sub p (Poly.const c) in
          if Poly.is_zero rest then k (Insn.mem ~disp:(8 * c) rb)
          else begin
            let rest_expr = Poly.to_expr rest in
            (* fast path: a live variable or memoized invariant can be
               used as the index register directly *)
            let direct =
              match rest_expr with
              | Ast.Var v when Gpralloc.is_defined ctx.gprs v -> Some v
              | Ast.Binop _ ->
                  let name = "$" ^ Pp.expr_to_string rest_expr in
                  if Gpralloc.is_defined ctx.gprs name then Some name else None
              | _ -> None
            in
            match direct with
            | Some v ->
                let ri = Gpralloc.get ctx.gprs v ~avoid:[ rb ] in
                let rb = Gpralloc.get ctx.gprs base ~avoid:[ ri ] in
                k (Insn.mem ~index:(ri, Insn.S8) ~disp:(8 * c) rb)
            | None ->
                let ri = eval_int st rest_expr in
                let rb = Gpralloc.get ctx.gprs base ~avoid:[ ri ] in
                k (Insn.mem ~index:(ri, Insn.S8) ~disp:(8 * c) rb);
                Gpralloc.free_temp ctx.gprs ri
          end
      | None ->
          let ri = eval_int st e in
          let rb = Gpralloc.get ctx.gprs base ~avoid:[ ri ] in
          k (Insn.mem ~index:(ri, Insn.S8) rb);
          Gpralloc.free_temp ctx.gprs ri)

(* ---------------------------------------------------------------------- *)
(* scalar double expressions                                               *)
(* ---------------------------------------------------------------------- *)

let note_width st (w : Insn.vwidth) =
  if w = Insn.W256 then st.used_256 <- true

(* Read the scalar value of [v] into some register's lane 0.  Returns
   (register, is_temporary). *)
let read_scalar st (v : string) : int * bool =
  let ctx = st.ctx in
  match Regfile.residence ctx.vecs v with
  | Some (Regfile.Lane (r, 0)) | Some (Regfile.Splat r) -> (r, false)
  | Some (Regfile.Lane (r, lane)) ->
      let t = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
      sel_extract_lane ctx ~dst:t ~src:r ~lane;
      (t, true)
  | None -> err "read of floating-point variable %s before definition" v

let free_if_temp st (r, is_temp) =
  if is_temp then Regfile.free_temp st.ctx.vecs r

(* Evaluate a double expression into a register lane 0 (owned temp
   unless it is a direct variable reference). *)
let rec eval_double st (e : Ast.expr) : int * bool =
  let ctx = st.ctx in
  match e with
  | Ast.Var v -> read_scalar st v
  | Ast.Double_lit 0. ->
      let t = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
      sel_zero ctx Insn.W128 ~dst:t;
      (t, true)
  | Ast.Double_lit f ->
      let t = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
      let g = Gpralloc.alloc_temp ctx.gprs () in
      emit ctx (Insn.Movabs (g, Int64.bits_of_float f));
      emit ctx (Insn.Movq_xr { dst = t; src = g });
      Gpralloc.free_temp ctx.gprs g;
      (t, true)
  | Ast.Index (a, idx) ->
      let t = Regfile.alloc_temp ctx.vecs ~cls:(Augem_analysis.Arrays.base_array_of a) in
      with_addr st a idx (fun m ->
          emit ctx (Insn.Vload { w = Insn.W64; dst = t; src = m }));
      (t, true)
  | Ast.Binop (op, a, b) ->
      let ra = eval_double st a in
      let rb = eval_double st b in
      let t = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
      let fop =
        match op with
        | Ast.Add -> Insn.Fadd
        | Ast.Sub -> Insn.Fsub
        | Ast.Mul -> Insn.Fmul
        | Ast.Div -> Insn.Fdiv
      in
      sel_vop ctx fop Insn.W64 ~dst:t ~src1:(fst ra) ~src2:(fst rb);
      free_if_temp st ra;
      free_if_temp st rb;
      (t, true)
  | Ast.Neg a ->
      let ra = eval_double st a in
      let z = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
      sel_zero ctx Insn.W128 ~dst:z;
      sel_vop ctx Insn.Fsub Insn.W64 ~dst:z ~src1:z ~src2:(fst ra);
      free_if_temp st ra;
      (z, true)
  | Ast.Int_lit _ -> err "integer literal in floating-point context"

(* ---------------------------------------------------------------------- *)
(* accumulator (plan) state                                                *)
(* ---------------------------------------------------------------------- *)

let plan_id (gp : Plan.group_plan) =
  match gp.Plan.gp_slots with
  | (v, _) :: _ -> v
  | [] -> "?"

let acc_arrays st (gp : Plan.group_plan) : (int array * bool array) option =
  Hashtbl.find_opt st.accs (plan_id gp)

(* Allocate the accumulator registers of a plan, binding every res
   variable to its (register, lane); called at the zero-init idiom. *)
let ensure_accs st (gp : Plan.group_plan) : int array * bool array =
  match acc_arrays st gp with
  | Some x -> x
  | None ->
      let n = gp.Plan.gp_accs in
      let regs = Array.make n (-1) in
      for i = 0 to n - 1 do
        let vars =
          gp.Plan.gp_slots
          |> List.filter (fun (_, s) -> s.Plan.slot_acc = i)
          |> List.sort (fun (_, a) (_, b) ->
                 compare a.Plan.slot_lane b.Plan.slot_lane)
          |> List.map fst
        in
        regs.(i) <-
          Regfile.alloc_lanes st.ctx.vecs ~cls:gp.Plan.gp_store_class ~vars
      done;
      let zeroed = Array.make n false in
      Hashtbl.replace st.accs (plan_id gp) (regs, zeroed);
      (regs, zeroed)

(* ---------------------------------------------------------------------- *)
(* plain statement emission                                                *)
(* ---------------------------------------------------------------------- *)

let emit_double_assign_var st v (e : Ast.expr) =
  let ctx = st.ctx in
  match (Plan.find_plan st.plan v, e) with
  | Some gp, Ast.Double_lit 0. ->
      (* accumulator zero-init idiom: first lane zeroes the register *)
      let regs, zeroed = ensure_accs st gp in
      let slot = List.assoc v gp.Plan.gp_slots in
      let i = slot.Plan.slot_acc in
      if not (zeroed.(i)) then begin
        note_width st gp.Plan.gp_width;
        sel_zero ctx gp.Plan.gp_width ~dst:regs.(i);
        zeroed.(i) <- true
      end
  | Some _, _ ->
      err "unsupported scalar write to vector accumulator %s" v
  | None, _ -> (
      (* splat variables get broadcast at their defining load *)
      let wants_splat = Plan.needs_splat st.plan v in
      match (wants_splat, e) with
      | true, Ast.Index (a, idx) ->
          let w = full_width ctx in
          note_width st w;
          let r =
            match Regfile.residence ctx.vecs v with
            | Some (Regfile.Splat r) -> r
            | Some (Regfile.Lane _) | None ->
                Regfile.alloc_splat ctx.vecs ~var:v
                  ~cls:(Augem_analysis.Arrays.base_array_of a)
          in
          with_addr st a idx (fun m ->
              emit ctx (Insn.Vbroadcast { w; dst = r; src = m }))
      | true, _ ->
          (* splat variable defined by a computed expression (e.g. the
             GER column scalar alpha*y[j]): evaluate scalar, then
             replicate across lanes *)
          let value = eval_double st e in
          let w = full_width ctx in
          note_width st w;
          let dst =
            match Regfile.residence ctx.vecs v with
            | Some (Regfile.Splat r) -> r
            | Some (Regfile.Lane _) | None ->
                Regfile.alloc_splat ctx.vecs ~var:v ~cls:"tmp"
          in
          sel_splat ctx w ~dst ~src:(fst value);
          free_if_temp st value
      | false, _ ->
          let value = eval_double st e in
          let dst =
            match Regfile.residence ctx.vecs v with
            | Some (Regfile.Lane (r, 0)) -> r
            | Some (Regfile.Splat _) | Some (Regfile.Lane _) ->
                (* overwrite kills the old (splat/lane) residence *)
                let r = Regfile.alloc_scalar ctx.vecs ~var:v in
                Regfile.rebind ctx.vecs ~var:v ~res:(Regfile.Lane (r, 0));
                r
            | None ->
                Regfile.set_class ctx.vecs ~var:v ~cls:"tmp";
                Regfile.alloc_scalar ctx.vecs ~var:v
          in
          if fst value <> dst then
            sel_vop ctx Insn.Fmov Insn.W64 ~dst ~src1:(fst value)
              ~src2:(fst value);
          free_if_temp st value)

let emit_int_assign st v (e : Ast.expr) =
  let ctx = st.ctx in
  let e = Simplify.simplify_expr e in
  if is_pointer ctx v then begin
    (* pointer arithmetic is in elements: scale by 8 bytes *)
    match e with
    | Ast.Var b when is_pointer ctx b ->
        let rb = Gpralloc.get ctx.gprs b in
        let rv = Gpralloc.def ctx.gprs v ~avoid:[ rb ] in
        if rv <> rb then emit ctx (Insn.Movrr (rv, rb))
    | Ast.Binop (Ast.Add, Ast.Var b, off) when is_pointer ctx b -> (
        match Simplify.simplify_expr off with
        | Ast.Int_lit n ->
            let rb = Gpralloc.get ctx.gprs b in
            if String.equal b v then emit ctx (Insn.Addri (rb, 8 * n))
            else begin
              let rv = Gpralloc.def ctx.gprs v ~avoid:[ rb ] in
              emit ctx (Insn.Lea (rv, Insn.mem ~disp:(8 * n) rb))
            end;
            ignore (Gpralloc.def ctx.gprs v)
        | Ast.Var o when Gpralloc.is_defined ctx.gprs o ->
            let ri = Gpralloc.get ctx.gprs o in
            let rb = Gpralloc.get ctx.gprs b ~avoid:[ ri ] in
            let rv = Gpralloc.def ctx.gprs v ~avoid:[ rb; ri ] in
            emit ctx (Insn.Lea (rv, Insn.mem ~index:(ri, Insn.S8) rb))
        | off ->
            let ri = eval_int st off in
            let rb = Gpralloc.get ctx.gprs b ~avoid:[ ri ] in
            let rv = Gpralloc.def ctx.gprs v ~avoid:[ rb; ri ] in
            emit ctx (Insn.Lea (rv, Insn.mem ~index:(ri, Insn.S8) rb));
            Gpralloc.free_temp ctx.gprs ri)
    | Ast.Binop (Ast.Sub, Ast.Var b, off) when is_pointer ctx b -> (
        match Simplify.simplify_expr off with
        | Ast.Int_lit n ->
            let rb = Gpralloc.get ctx.gprs b in
            if String.equal b v then emit ctx (Insn.Addri (rb, -8 * n))
            else begin
              let rv = Gpralloc.def ctx.gprs v ~avoid:[ rb ] in
              emit ctx (Insn.Lea (rv, Insn.mem ~disp:(-8 * n) rb))
            end;
            ignore (Gpralloc.def ctx.gprs v)
        | off ->
            let ri = eval_int st off in
            emit ctx (Insn.Negr ri);
            let rb = Gpralloc.get ctx.gprs b ~avoid:[ ri ] in
            let rv = Gpralloc.def ctx.gprs v ~avoid:[ rb; ri ] in
            emit ctx (Insn.Lea (rv, Insn.mem ~index:(ri, Insn.S8) rb));
            Gpralloc.free_temp ctx.gprs ri)
    | _ -> err "unsupported pointer expression for %s" v
  end
  else
    match e with
    | Ast.Binop (Ast.Add, Ast.Var v', Ast.Int_lit n) when String.equal v v' ->
        let r = Gpralloc.get ctx.gprs v in
        let _ = Gpralloc.def ctx.gprs v in
        emit ctx (Insn.Addri (r, n))
    | Ast.Int_lit n ->
        let r = Gpralloc.def ctx.gprs v in
        emit ctx (Insn.Movri (r, n))
    | _ ->
        let rt = eval_int st e in
        let rv = Gpralloc.def ctx.gprs v ~avoid:[ rt ] in
        emit ctx (Insn.Movrr (rv, rt));
        Gpralloc.free_temp ctx.gprs rt

let emit_plain st (s : Ast.stmt) =
  let ctx = st.ctx in
  match s with
  | Ast.Decl (ty, v, init) -> (
      Hashtbl.replace ctx.types v ty;
      match init with
      | None -> ()
      | Some e -> (
          match ty with
          | Ast.Double -> emit_double_assign_var st v e
          | Ast.Int | Ast.Ptr _ -> emit_int_assign st v e))
  | Ast.Assign (Ast.Lvar v, e) -> (
      match type_of_var ctx v with
      | Ast.Double -> emit_double_assign_var st v e
      | Ast.Int | Ast.Ptr _ -> emit_int_assign st v e)
  | Ast.Assign (Ast.Lindex (a, idx), e) ->
      let value = eval_double st e in
      with_addr st a idx (fun m ->
          emit ctx (Insn.Vstore { w = Insn.W64; src = fst value; dst = m }));
      free_if_temp st value
  | Ast.Prefetch (hint, base, off) ->
      let kind =
        match hint with
        | Ast.Prefetch_read -> Insn.Pf_t0
        | Ast.Prefetch_write ->
            if String.equal ctx.arch.Arch.vendor "AMD" then Insn.Pf_w
            else Insn.Pf_t0
      in
      with_addr st base off (fun m -> emit ctx (Insn.Prefetch (kind, m)))
  | Ast.Comment c -> emit ctx (Insn.Comment c)
  | Ast.For _ | Ast.If _ | Ast.Tagged _ ->
      err "control statement reached the plain emitter"

(* ---------------------------------------------------------------------- *)
(* template optimizers (paper sections 3.1-3.6)                            *)
(* ---------------------------------------------------------------------- *)

(* Scalar fall-back: translate the template's statements one by one,
   releasing each unit template's dead temporaries before the next so a
   long unrolled group does not exhaust the register file. *)
let emit_region_scalar st (r : T.region) (live_out : SS.t) =
  let release () =
    Regfile.release_dead st.ctx.vecs ~live:(fun v -> SS.mem v live_out)
  in
  let unit_stmts =
    match r with
    | T.Mm_unrolled_comp l -> List.map T.mm_comp_stmts l
    | T.Mm_unrolled_store l -> List.map T.mm_store_stmts l
    | T.Mv_unrolled_comp l -> List.map T.mv_comp_stmts l
    | T.Sv_unrolled_scal l -> List.map T.sv_scal_stmts l
    | T.Sv_unrolled_copy l -> List.map T.sv_copy_stmts l
  in
  List.iter
    (fun stmts ->
      List.iter (emit_plain st) stmts;
      release ())
    unit_stmts

(* The mmUnrolledCOMP optimizer (3.1, 3.4). *)
let emit_mm_comp st (gp : Plan.group_plan) (group : T.mm_comp list) : bool =
  let ctx = st.ctx in
  match acc_arrays st gp with
  | None -> false (* accumulators were never zero-initialized *)
  | Some (acc_regs, _) -> (
      let first = List.hd group in
      let a_ptr = first.T.mc_a in
      let a_cls = Augem_analysis.Arrays.base_array_of a_ptr in
      let d0 =
        match T.disp_of first.T.mc_idx1 with Some d -> d | None -> 0
      in
      (* rotating scratch pool: distinct registers for the Mul results
         of consecutive template instances avoid false dependences
         (the reason for the per-array queues in the first place) *)
      let pool = ref [] in
      let pos = ref 0 in
      let scratch () =
        if List.length !pool < 4 then (
          match Regfile.alloc_temp ctx.vecs ~cls:"tmp" with
          | t ->
              pool := !pool @ [ t ];
              t
          | exception Regfile.Out_of_registers _ when !pool <> [] ->
              pos := (!pos + 1) mod List.length !pool;
              List.nth !pool !pos)
        else begin
          pos := (!pos + 1) mod List.length !pool;
          List.nth !pool !pos
        end
      in
      let free_pool () =
        List.iter (Regfile.free_temp ctx.vecs) !pool;
        pool := []
      in
      match gp.Plan.gp_strategy with
      | Plan.S_scalar -> false
      | Plan.S_vdup { w; n1 = _; chunks; bs } ->
          note_width st w;
          let lanes = Insn.lanes w in
          (* load the contiguous A vectors once; reuse across B's *)
          let va =
            Array.init chunks (fun c ->
                let r = Regfile.alloc_temp ctx.vecs ~cls:a_cls in
                with_addr st a_ptr (Ast.Int_lit (d0 + (c * lanes))) (fun m ->
                    emit ctx (Insn.Vload { w; dst = r; src = m }));
                r)
          in
          List.iteri
            (fun bi (b_ptr, b_disp) ->
              let b_cls = Augem_analysis.Arrays.base_array_of b_ptr in
              let vb = Regfile.alloc_temp ctx.vecs ~cls:b_cls in
              with_addr st b_ptr (Ast.Int_lit b_disp) (fun m ->
                  emit ctx (Insn.Vbroadcast { w; dst = vb; src = m }));
              for c = 0 to chunks - 1 do
                let acc = acc_regs.((bi * chunks) + c) in
                sel_fmadd ctx w ~acc ~a:va.(c) ~b:vb ~scratch
              done;
              Regfile.free_temp ctx.vecs vb)
            bs;
          Array.iter (Regfile.free_temp ctx.vecs) va;
          free_pool ();
          true
      | Plan.S_elem { w; chunks } ->
          note_width st w;
          let lanes = Insn.lanes w in
          let b_ptr = first.T.mc_b in
          let b_cls = Augem_analysis.Arrays.base_array_of b_ptr in
          let d0b =
            match T.disp_of first.T.mc_idx2 with Some d -> d | None -> 0
          in
          for c = 0 to chunks - 1 do
            let va = Regfile.alloc_temp ctx.vecs ~cls:a_cls in
            with_addr st a_ptr (Ast.Int_lit (d0 + (c * lanes))) (fun m ->
                emit ctx (Insn.Vload { w; dst = va; src = m }));
            let vb = Regfile.alloc_temp ctx.vecs ~cls:b_cls in
            with_addr st b_ptr (Ast.Int_lit (d0b + (c * lanes))) (fun m ->
                emit ctx (Insn.Vload { w; dst = vb; src = m }));
            sel_fmadd ctx w ~acc:acc_regs.(c) ~a:va ~b:vb ~scratch;
            Regfile.free_temp ctx.vecs va;
            Regfile.free_temp ctx.vecs vb
          done;
          free_pool ();
          true
      | Plan.S_shuf { w; a_chunks; b_chunks } ->
          note_width st w;
          let lanes = Insn.lanes w in
          let b_ptr = first.T.mc_b in
          let b_cls = Augem_analysis.Arrays.base_array_of b_ptr in
          let d0b =
            match T.disp_of first.T.mc_idx2 with Some d -> d | None -> 0
          in
          let va =
            Array.init a_chunks (fun c ->
                let r = Regfile.alloc_temp ctx.vecs ~cls:a_cls in
                with_addr st a_ptr (Ast.Int_lit (d0 + (c * lanes))) (fun m ->
                    emit ctx (Insn.Vload { w; dst = r; src = m }));
                r)
          in
          for bc = 0 to b_chunks - 1 do
            let vb = Regfile.alloc_temp ctx.vecs ~cls:b_cls in
            with_addr st b_ptr (Ast.Int_lit (d0b + (bc * lanes))) (fun m ->
                emit ctx (Insn.Vload { w; dst = vb; src = m }));
            let current = ref vb in
            for k = 0 to lanes - 1 do
              if k > 0 then begin
                (* rotate the B vector by one lane: for W128 this is a
                   single swap (shufpd $1) *)
                let rot = Regfile.alloc_temp ctx.vecs ~cls:b_cls in
                emit ctx
                  (Insn.Vshuf { w; dst = rot; src1 = !current; src2 = !current;
                                imm = 1 });
                if !current <> vb then Regfile.free_temp ctx.vecs !current;
                current := rot
              end;
              for ac = 0 to a_chunks - 1 do
                let acc = acc_regs.((((ac * b_chunks) + bc) * lanes) + k) in
                sel_fmadd ctx w ~acc ~a:va.(ac) ~b:!current ~scratch
              done
            done;
            if !current <> vb then Regfile.free_temp ctx.vecs !current;
            Regfile.free_temp ctx.vecs vb
          done;
          Array.iter (Regfile.free_temp ctx.vecs) va;
          free_pool ();
          true)

(* The mmUnrolledSTORE optimizer (3.2, 3.5). *)
let emit_mm_store st (group : T.mm_store list) (live_out : SS.t) : bool =
  let ctx = st.ctx in
  (* all res scalars must be dead after the region and resident in
     vector lanes forming gatherable chunks *)
  if List.exists (fun m -> SS.mem m.T.ms_res live_out) group then false
  else
    let residences =
      List.map
        (fun m ->
          match Regfile.residence ctx.vecs m.T.ms_res with
          | Some (Regfile.Lane (r, l)) -> Some (m, r, l)
          | Some (Regfile.Splat _) | None -> None)
        group
    in
    if List.exists Option.is_none residences then false
    else
      let residences = List.map Option.get residences in
      let n = List.length residences in
      let w_lanes =
        (* width of the accumulators: infer from the plan of the first res *)
        match Plan.find_plan st.plan (List.hd group).T.ms_res with
        | Some gp -> Insn.lanes gp.Plan.gp_width
        | None -> 1
      in
      if w_lanes < 2 || n mod w_lanes <> 0 then false
      else begin
        let w = Plan.Insn_width.of_lanes w_lanes in
        note_width st w;
        let c_ptr = (List.hd group).T.ms_c in
        let c_cls = Augem_analysis.Arrays.base_array_of c_ptr in
        let d0 =
          match T.disp_of (List.hd group).T.ms_idx with Some d -> d | None -> 0
        in
        let chunk_ok = ref true in
        let chunks = n / w_lanes in
        (* validate gatherability first *)
        let gathered = Array.make chunks None in
        for c = 0 to chunks - 1 do
          let sources =
            List.filteri (fun i _ -> i / w_lanes = c) residences
            |> List.map (fun (_, r, l) -> (r, l))
          in
          let identity =
            List.mapi (fun i (r, l) -> (i, r, l)) sources
            |> List.for_all (fun (i, r, l) ->
                   l = i && r = (match sources with (r0, _) :: _ -> r0 | [] -> r))
          in
          if identity then gathered.(c) <- Some (`Direct (fst (List.hd sources)))
          else if w_lanes = 2 then
            match sources with
            | [ (r0, l0); (r1, l1) ] ->
                gathered.(c) <- Some (`Shuf (r0, l0, r1, l1))
            | _ -> chunk_ok := false
          else chunk_ok := false
        done;
        if not !chunk_ok then false
        else begin
          for c = 0 to chunks - 1 do
            let src, src_temp =
              match gathered.(c) with
              | Some (`Direct r) -> (r, false)
              | Some (`Shuf (r0, l0, r1, l1)) ->
                  let t = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
                  if avx ctx then
                    emit ctx
                      (Insn.Vshuf { w; dst = t; src1 = r0; src2 = r1;
                                    imm = l0 lor (l1 lsl 1) })
                  else begin
                    emit ctx
                      (Insn.Vop { op = Insn.Fmov; w; dst = t; src1 = r0;
                                  src2 = r0 });
                    emit ctx
                      (Insn.Vshuf { w; dst = t; src1 = t; src2 = r1;
                                    imm = l0 lor (l1 lsl 1) })
                  end;
                  (t, true)
              | None -> assert false
            in
            let vc = Regfile.alloc_temp ctx.vecs ~cls:c_cls in
            with_addr st c_ptr (Ast.Int_lit (d0 + (c * w_lanes))) (fun m ->
                emit ctx (Insn.Vload { w; dst = vc; src = m }));
            sel_vop ctx Insn.Fadd w ~dst:vc ~src1:vc ~src2:src;
            with_addr st c_ptr (Ast.Int_lit (d0 + (c * w_lanes))) (fun m ->
                emit ctx (Insn.Vstore { w; src = vc; dst = m }));
            Regfile.free_temp ctx.vecs vc;
            if src_temp then Regfile.free_temp ctx.vecs src
          done;
          true
        end
      end

(* The mvUnrolledCOMP optimizer (3.3, 3.6). *)
let emit_mv_comp st (group : T.mv_comp list) : bool =
  let ctx = st.ctx in
  let first = List.hd group in
  let n = List.length group in
  let disps_ok =
    List.for_all
      (fun m ->
        Option.is_some (T.disp_of m.T.mv_idx1)
        && Option.is_some (T.disp_of m.T.mv_idx2))
      group
  in
  let lanes = min (Insn.lanes (full_width ctx)) 4 in
  if (not disps_ok) || n < lanes then false
  else begin
    let w = full_width ctx in
    note_width st w;
    let chunks = n / lanes in
    let leftover = n mod lanes in
    let a_ptr = first.T.mv_a and b_ptr = first.T.mv_b in
    let a_cls = Augem_analysis.Arrays.base_array_of a_ptr in
    let b_cls = Augem_analysis.Arrays.base_array_of b_ptr in
    let d0a = Option.get (T.disp_of first.T.mv_idx1) in
    let d0b = Option.get (T.disp_of first.T.mv_idx2) in
    (* the scalar multiplier must already be replicated: broadcast
       happens at its defining load or, for parameters, at function
       entry — never here, since this code may sit inside a loop *)
    let scal = first.T.mv_scal in
    match Regfile.residence ctx.vecs scal with
    | Some (Regfile.Lane _) | None -> false
    | Some (Regfile.Splat scal_reg) ->
    for c = 0 to chunks - 1 do
      let va = Regfile.alloc_temp ctx.vecs ~cls:a_cls in
      with_addr st a_ptr (Ast.Int_lit (d0a + (c * lanes))) (fun m ->
          emit ctx (Insn.Vload { w; dst = va; src = m }));
      let vb = Regfile.alloc_temp ctx.vecs ~cls:b_cls in
      with_addr st b_ptr (Ast.Int_lit (d0b + (c * lanes))) (fun m ->
          emit ctx (Insn.Vload { w; dst = vb; src = m }));
      let tmp = ref (-1) in
      sel_fmadd ctx w ~acc:vb ~a:va ~b:scal_reg ~scratch:(fun () ->
          let t = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
          tmp := t;
          t);
      if !tmp >= 0 then Regfile.free_temp ctx.vecs !tmp;
      with_addr st b_ptr (Ast.Int_lit (d0b + (c * lanes))) (fun m ->
          emit ctx (Insn.Vstore { w; src = vb; dst = m }));
      Regfile.free_temp ctx.vecs va;
      Regfile.free_temp ctx.vecs vb
    done;
    (* leftover instances take the scalar path *)
    if leftover > 0 then begin
      let rest = List.filteri (fun i _ -> i >= chunks * lanes) group in
      List.iter (fun m -> List.iter (emit_plain st) (T.mv_comp_stmts m)) rest
    end;
    true
  end

(* The svUnrolledSCAL optimizer (extension template): fold n in-place
   scalings into Vld-Vmul-Vst over the replicated scalar. *)
let emit_sv_scal st (group : T.sv_scal list) : bool =
  let ctx = st.ctx in
  let first = List.hd group in
  let n = List.length group in
  let disps_ok =
    List.for_all (fun m -> Option.is_some (T.disp_of m.T.ss_idx)) group
  in
  let lanes = min (Insn.lanes (full_width ctx)) 4 in
  if (not disps_ok) || n < lanes then false
  else
    match Regfile.residence ctx.vecs first.T.ss_scal with
    | Some (Regfile.Lane _) | None -> false
    | Some (Regfile.Splat scal_reg) ->
        let w = full_width ctx in
        note_width st w;
        let chunks = n / lanes and leftover = n mod lanes in
        let b_ptr = first.T.ss_b in
        let b_cls = Augem_analysis.Arrays.base_array_of b_ptr in
        let d0 = Option.get (T.disp_of first.T.ss_idx) in
        for c = 0 to chunks - 1 do
          let vb = Regfile.alloc_temp ctx.vecs ~cls:b_cls in
          with_addr st b_ptr (Ast.Int_lit (d0 + (c * lanes))) (fun m ->
              emit ctx (Insn.Vload { w; dst = vb; src = m }));
          sel_vop ctx Insn.Fmul w ~dst:vb ~src1:vb ~src2:scal_reg;
          with_addr st b_ptr (Ast.Int_lit (d0 + (c * lanes))) (fun m ->
              emit ctx (Insn.Vstore { w; src = vb; dst = m }));
          Regfile.free_temp ctx.vecs vb
        done;
        if leftover > 0 then begin
          let rest = List.filteri (fun i _ -> i >= chunks * lanes) group in
          List.iter
            (fun m -> List.iter (emit_plain st) (T.sv_scal_stmts m))
            rest
        end;
        true

(* The svUnrolledCOPY optimizer (extension template): block moves. *)
let emit_sv_copy st (group : T.sv_copy list) : bool =
  let ctx = st.ctx in
  let first = List.hd group in
  let n = List.length group in
  let disps_ok =
    List.for_all
      (fun m ->
        Option.is_some (T.disp_of m.T.sc_idx1)
        && Option.is_some (T.disp_of m.T.sc_idx2))
      group
  in
  let lanes = min (Insn.lanes (full_width ctx)) 4 in
  if (not disps_ok) || n < lanes then false
  else begin
    let w = full_width ctx in
    note_width st w;
    let chunks = n / lanes and leftover = n mod lanes in
    let a_ptr = first.T.sc_a and b_ptr = first.T.sc_b in
    let a_cls = Augem_analysis.Arrays.base_array_of a_ptr in
    let d0a = Option.get (T.disp_of first.T.sc_idx1) in
    let d0b = Option.get (T.disp_of first.T.sc_idx2) in
    for c = 0 to chunks - 1 do
      let va = Regfile.alloc_temp ctx.vecs ~cls:a_cls in
      with_addr st a_ptr (Ast.Int_lit (d0a + (c * lanes))) (fun m ->
          emit ctx (Insn.Vload { w; dst = va; src = m }));
      with_addr st b_ptr (Ast.Int_lit (d0b + (c * lanes))) (fun m ->
          emit ctx (Insn.Vstore { w; src = va; dst = m }));
      Regfile.free_temp ctx.vecs va
    done;
    if leftover > 0 then begin
      let rest = List.filteri (fun i _ -> i >= chunks * lanes) group in
      List.iter (fun m -> List.iter (emit_plain st) (T.sv_copy_stmts m)) rest
    end;
    true
  end

let emit_region st (r : T.region) (live_out : SS.t) =
  let ctx = st.ctx in
  emit ctx (Insn.Comment (Printf.sprintf "<%s n=%d>" (T.region_name r)
                            (T.region_size r)));
  let vectorized =
    match r with
    | T.Mm_unrolled_comp group -> (
        match Plan.find_plan st.plan (List.hd group).T.mc_res with
        | Some gp
          when gp.Plan.gp_strategy <> Plan.S_scalar
               (* the plan must belong to THIS region: a different group
                  may share an accumulator variable (round-robin
                  expansion leftovers) but have a different shape *)
               && gp.Plan.gp_region = group ->
            emit_mm_comp st gp group
        | Some _ | None -> false)
    | T.Mm_unrolled_store group -> emit_mm_store st group live_out
    | T.Mv_unrolled_comp group -> emit_mv_comp st group
    | T.Sv_unrolled_scal group -> emit_sv_scal st group
    | T.Sv_unrolled_copy group -> emit_sv_copy st group
  in
  if not vectorized then emit_region_scalar st r live_out;
  (* release registers whose residents are dead after the region *)
  Regfile.release_dead ctx.vecs ~live:(fun v -> SS.mem v live_out)

(* ---------------------------------------------------------------------- *)
(* control flow                                                            *)
(* ---------------------------------------------------------------------- *)

let cond_of_cmp = function
  | Ast.Lt -> Insn.Clt
  | Ast.Le -> Insn.Cle
  | Ast.Gt -> Insn.Cgt
  | Ast.Ge -> Insn.Cge
  | Ast.Eq -> Insn.Ceq
  | Ast.Ne -> Insn.Cne

let negate = function
  | Insn.Clt -> Insn.Cge
  | Insn.Cle -> Insn.Cgt
  | Insn.Cgt -> Insn.Cle
  | Insn.Cge -> Insn.Clt
  | Insn.Ceq -> Insn.Cne
  | Insn.Cne -> Insn.Ceq

(* integer/pointer variables referenced directly at this nesting level
   (not inside nested loops), for pinning *)
let hot_vars_of_astmts ctx (stmts : M.astmt list) : string list =
  let of_stmt s =
    match s with
    | Ast.Assign (lv, e) ->
        (match lv with Ast.Lindex (a, _) -> [ a ] | Ast.Lvar v -> [ v ])
        @ Ast.expr_vars e
    | Ast.Prefetch (_, b, off) -> b :: Ast.expr_vars off
    | Ast.Decl (_, _, Some e) -> Ast.expr_vars e
    | _ -> []
  in
  List.concat_map
    (function
      | M.A_plain (s, _) -> of_stmt s
      | M.A_region (r, _) -> List.concat_map of_stmt (T.region_stmts r)
      | M.A_for _ -> []
      | M.A_if _ -> [])
    stmts
  |> List.filter (fun v ->
         match Hashtbl.find_opt ctx.types v with
         | Some (Ast.Int | Ast.Ptr _) -> true
         | _ -> false)
  |> List.sort_uniq String.compare

let rec emit_astmts st (stmts : M.astmt list) =
  List.iter (emit_astmt st) stmts

and emit_astmt st = function
  | M.A_plain (s, live_after) ->
      emit_plain st s;
      (* free vector registers of scalars that just died (e.g. the
         partial accumulators after a reduction's final sums).
         Plan-bound accumulators are exempt: their sibling lanes may
         not have been initialized yet — the release after their store
         region retires them. *)
      Regfile.release_dead st.ctx.vecs ~live:(fun v ->
          SS.mem v live_after || Plan.find_plan st.plan v <> None)
  | M.A_region (r, live_out) -> emit_region st r live_out
  | M.A_for (h, body) -> emit_for st h body
  | M.A_if (a, c, b, t, f) -> emit_if st a c b t f

(* Pre-materialize a pure compound integer expression outside a loop so
   that in-body uses hit the memo table; returns its synthetic name.
   [strip] removes the constant term first — addressing folds constants
   into displacements, so prefetch offsets are looked up const-stripped,
   while loop bounds are looked up whole. *)
and prematerialize ?(strip = true) st (e : Ast.expr) : string option =
  match Poly.of_expr (Simplify.simplify_expr e) with
  | None -> None
  | Some p ->
      let rest =
        if strip then begin
          let c =
            match Poly.Mmap.find_opt [] p with Some c -> c | None -> 0
          in
          Poly.to_expr (Poly.sub p (Poly.const c))
        end
        else Simplify.simplify_expr e
      in
      if
        (match rest with Ast.Binop _ -> true | _ -> false)
        && pure_expr st rest
        && Ast.expr_size rest > 2
      then
        let name = "$" ^ Pp.expr_to_string rest in
        if Gpralloc.is_defined st.ctx.gprs name then None
          (* hoisted by an enclosing loop; that loop owns it *)
        else begin
          let r = memoized st rest in
          Gpralloc.free_temp st.ctx.gprs r;
          Some name
        end
      else None

and emit_for st (h : Ast.loop_header) (body : M.astmt list) =
  let ctx = st.ctx in
  (* counter initialization *)
  emit_int_assign st h.Ast.loop_var h.Ast.loop_init;
  (* hoist loop-invariant prefetch offsets and the loop bound *)
  let hoisted =
    List.filter_map
      (function
        | M.A_plain (Ast.Prefetch (_, _, off), _) -> prematerialize st off
        | _ -> None)
      body
    @ (match prematerialize ~strip:false st h.Ast.loop_bound with
      | Some v -> [ v ]
      | None -> [])
  in
  (* pin the loop counter and the hot scalars of this level: pointers
     before plain ints, keeping at least 4 registers unpinned for
     temporaries and spill traffic *)
  let candidates =
    (h.Ast.loop_var :: Ast.expr_vars h.Ast.loop_bound)
    @ hot_vars_of_astmts ctx body
  in
  let seen = Hashtbl.create 8 in
  let candidates =
    List.filter
      (fun v ->
        if Hashtbl.mem seen v then false
        else begin
          Hashtbl.replace seen v ();
          match Hashtbl.find_opt ctx.types v with
          | Some (Ast.Int | Ast.Ptr _) -> true
          | Some Ast.Double | None -> false
        end)
      candidates
  in
  let pointers, ints = List.partition (fun v -> is_pointer ctx v) candidates in
  let ordered =
    (h.Ast.loop_var :: pointers)
    @ List.sort_uniq String.compare hoisted
    @ List.filter (fun v -> not (String.equal v h.Ast.loop_var)) ints
  in
  let previously_pinned = SS.of_list (Gpralloc.pinned_vars ctx.gprs) in
  (* the innermost loop is the hot one: it gets all remaining pinnable
     registers, while outer loops only pin their counter and bound *)
  let is_innermost =
    not (List.exists (function M.A_for _ -> true | _ -> false) body)
  in
  let remaining = 14 - 4 - SS.cardinal previously_pinned in
  let budget = ref (if is_innermost then remaining else min 1 remaining) in
  let pinned =
    List.filter
      (fun v ->
        if
          !budget > 0
          && (not (SS.mem v previously_pinned))
          && Gpralloc.is_defined ctx.gprs v
        then
          match Gpralloc.get ctx.gprs v with
          | _ ->
              Gpralloc.pin ctx.gprs v;
              decr budget;
              true
          | exception Gpralloc.Gpr_error _ -> false
        else false)
      ordered
  in
  let body_label = fresh_label ctx "body" in
  let end_label = fresh_label ctx "end" in
  (* head test: skip the loop when the trip count is zero *)
  let test target cond =
    (match Simplify.simplify_expr h.Ast.loop_bound with
    | Ast.Int_lit n ->
        let rc = Gpralloc.get ctx.gprs h.Ast.loop_var in
        emit ctx (Insn.Cmpri (rc, n))
    | Ast.Var v when Gpralloc.is_defined ctx.gprs v ->
        let rb = Gpralloc.get ctx.gprs v in
        let rc = Gpralloc.get ctx.gprs h.Ast.loop_var ~avoid:[ rb ] in
        emit ctx (Insn.Cmprr (rc, rb))
    | e -> (
        (* memoized invariant bound *)
        let name = "$" ^ Pp.expr_to_string (Simplify.simplify_expr e) in
        if Gpralloc.is_defined ctx.gprs name then begin
          let rb = Gpralloc.get ctx.gprs name in
          let rc = Gpralloc.get ctx.gprs h.Ast.loop_var ~avoid:[ rb ] in
          emit ctx (Insn.Cmprr (rc, rb))
        end
        else begin
          let rb = eval_int st e in
          let rc = Gpralloc.get ctx.gprs h.Ast.loop_var ~avoid:[ rb ] in
          emit ctx (Insn.Cmprr (rc, rb));
          Gpralloc.free_temp ctx.gprs rb
        end));
    emit ctx (Insn.Jcc (cond, target))
  in
  Gpralloc.spill_all ctx.gprs;
  test end_label (negate (cond_of_cmp h.Ast.loop_cmp));
  Gpralloc.spill_all ctx.gprs;
  Gpralloc.invalidate_all ctx.gprs;
  emit ctx (Insn.Label body_label);
  emit_astmts st body;
  (* counter increment *)
  emit_int_assign st h.Ast.loop_var
    (Ast.Binop (Ast.Add, Ast.Var h.Ast.loop_var, h.Ast.loop_step));
  Gpralloc.spill_all ctx.gprs;
  test body_label (cond_of_cmp h.Ast.loop_cmp);
  emit ctx (Insn.Label end_label);
  Gpralloc.spill_all ctx.gprs;
  Gpralloc.invalidate_all ctx.gprs;
  List.iter (Gpralloc.unpin ctx.gprs) pinned;
  (* memoized invariants go out of scope with the loop that hoisted
     them: their definition would not dominate later uses *)
  List.iter (Gpralloc.forget ctx.gprs) hoisted

and emit_if st a c b tb fb =
  let ctx = st.ctx in
  let else_label = fresh_label ctx "else" in
  let end_label = fresh_label ctx "endif" in
  let ra = eval_int st a in
  let rb = eval_int st b in
  emit ctx (Insn.Cmprr (ra, rb));
  Gpralloc.free_temp ctx.gprs ra;
  Gpralloc.free_temp ctx.gprs rb;
  Gpralloc.spill_all ctx.gprs;
  Gpralloc.invalidate_all ctx.gprs;
  emit ctx (Insn.Jcc (negate (cond_of_cmp c), else_label));
  emit_astmts st tb;
  Gpralloc.spill_all ctx.gprs;
  Gpralloc.invalidate_all ctx.gprs;
  emit ctx (Insn.Jmp end_label);
  emit ctx (Insn.Label else_label);
  emit_astmts st fb;
  Gpralloc.spill_all ctx.gprs;
  Gpralloc.invalidate_all ctx.gprs;
  emit ctx (Insn.Label end_label)

(* ---------------------------------------------------------------------- *)
(* driver                                                                  *)
(* ---------------------------------------------------------------------- *)

(* Scan declarations so variable types are known before emission. *)
let rec record_types types = function
  | [] -> ()
  | M.A_plain (Ast.Decl (ty, v, _), _) :: rest ->
      Hashtbl.replace types v ty;
      record_types types rest
  | M.A_for (_, body) :: rest ->
      record_types types body;
      record_types types rest
  | M.A_if (_, _, _, t, f) :: rest ->
      record_types types t;
      record_types types f;
      record_types types rest
  | (M.A_plain _ | M.A_region _) :: rest -> record_types types rest

let rec assigned_vars_of acc = function
  | [] -> acc
  | M.A_plain (Ast.Assign (Ast.Lvar v, _), _) :: rest ->
      assigned_vars_of (SS.add v acc) rest
  | M.A_plain (Ast.Decl (_, v, Some _), _) :: rest ->
      assigned_vars_of (SS.add v acc) rest
  | M.A_for (h, body) :: rest ->
      assigned_vars_of (assigned_vars_of (SS.add h.Ast.loop_var acc) body) rest
  | M.A_if (_, _, _, t, f) :: rest ->
      assigned_vars_of (assigned_vars_of (assigned_vars_of acc t) f) rest
  | M.A_region (r, _) :: rest ->
      let acc =
        List.fold_left
          (fun acc s ->
            match s with
            | Ast.Assign (Ast.Lvar v, _) -> SS.add v acc
            | _ -> acc)
          acc (T.region_stmts r)
      in
      assigned_vars_of acc rest
  | M.A_plain _ :: rest -> assigned_vars_of acc rest

(* Generate a complete assembly program from a template-annotated
   kernel. *)
let generate_annotated ~(arch : Arch.t) ?(opts = default_options)
    (ak : M.akernel) : Insn.program =
  let lanes = machine_lanes opts arch in
  let plan = Plan.build ~machine_lanes:lanes ~prefer:opts.prefer ak in
  let out = ref [] in
  let gprs = Gpralloc.create ~emit:(fun i -> out := i :: !out) in
  (* reserve the callee-save area (6 regs) below %rbp *)
  let _ =
    List.map
      (fun r ->
        let s = Gpralloc.state gprs ("$save_" ^ Reg.gpr_name r) in
        Gpralloc.home_slot gprs s)
      Reg.callee_saved
  in
  let array_classes =
    List.filter_map
      (fun p ->
        match p.Ast.p_type with
        | Ast.Ptr _ -> Some (Augem_analysis.Arrays.base_array_of p.Ast.p_name)
        | _ -> None)
      ak.M.ak_params
    |> List.sort_uniq String.compare
  in
  let vecs = Regfile.create ~nregs:arch.Arch.vregs ~array_classes in
  let types = Hashtbl.create 32 in
  List.iter (fun p -> Hashtbl.replace types p.Ast.p_name p.Ast.p_type)
    ak.M.ak_params;
  record_types types ak.M.ak_body;
  let ctx =
    { Ctx.arch; out; vecs; gprs; types; label_count = 0; scratch_slot = None }
  in
  let st =
    {
      ctx;
      plan;
      accs = Hashtbl.create 8;
      assigned_vars = assigned_vars_of SS.empty ak.M.ak_body;
      vec_width = Insn.W64;
      used_256 = false;
    }
  in
  ignore st.vec_width;
  (* parameter binding (System V AMD64) *)
  let int_regs = ref Reg.argument_gprs in
  let fp_regs = ref [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let stack_disp = ref 16 in
  List.iter
    (fun p ->
      match p.Ast.p_type with
      | Ast.Int | Ast.Ptr _ -> (
          match !int_regs with
          | r :: rest ->
              int_regs := rest;
              Gpralloc.bind_incoming ctx.gprs ~var:p.Ast.p_name ~reg:r
          | [] ->
              Gpralloc.bind_stack_param ctx.gprs ~var:p.Ast.p_name
                ~disp:!stack_disp;
              stack_disp := !stack_disp + 8)
      | Ast.Double -> (
          match !fp_regs with
          | r :: rest ->
              fp_regs := rest;
              Regfile.bind_incoming ctx.vecs ~var:p.Ast.p_name ~reg:r;
              Regfile.set_class ctx.vecs ~var:p.Ast.p_name ~cls:"tmp"
          | [] -> err "more than 8 floating-point parameters"))
    ak.M.ak_params;
  (* double parameters consumed by mv templates need their value
     replicated across lanes once, before any loop *)
  List.iter
    (fun p ->
      if p.Ast.p_type = Ast.Double && Plan.needs_splat plan p.Ast.p_name then
        match Regfile.residence ctx.vecs p.Ast.p_name with
        | Some (Regfile.Lane (r, 0)) ->
            let w = full_width ctx in
            if w = Insn.W256 then st.used_256 <- true;
            let t = Regfile.alloc_temp ctx.vecs ~cls:"tmp" in
            sel_splat ctx w ~dst:t ~src:r;
            Regfile.rebind ctx.vecs ~var:p.Ast.p_name
              ~res:(Regfile.Splat t);
            Regfile.free_temp ctx.vecs t
        | Some _ | None -> ())
    ak.M.ak_params;
  emit_astmts st ak.M.ak_body;
  let body = List.rev !(ctx.out) in
  (* prologue / epilogue *)
  let frame = Gpralloc.frame_bytes ctx.gprs in
  let frame = (frame + 15) / 16 * 16 in
  let used_callee_saved =
    let written = Hashtbl.create 8 in
    List.iter
      (fun i ->
        List.iter
          (function
            | Reg.Gp g -> Hashtbl.replace written g ()
            | Reg.Vr _ -> ())
          (Insn.writes i))
      body;
    List.filter (fun r -> Hashtbl.mem written r) Reg.callee_saved
    |> List.filter (fun r -> r <> Reg.Rbp)
  in
  let save_mem r =
    let s = Gpralloc.state ctx.gprs ("$save_" ^ Reg.gpr_name r) in
    Insn.mem ~disp:(Gpralloc.home_slot ctx.gprs s) Reg.Rbp
  in
  let prologue =
    [ Insn.Push Reg.Rbp; Insn.Movrr (Reg.Rbp, Reg.Rsp);
      Insn.Subri (Reg.Rsp, frame) ]
    @ List.map (fun r -> Insn.Storeq (save_mem r, r)) used_callee_saved
  in
  let epilogue =
    List.map (fun r -> Insn.Loadq (r, save_mem r)) used_callee_saved
    @ (if st.used_256 then [ Insn.Vzeroupper ] else [])
    @ [ Insn.Movrr (Reg.Rsp, Reg.Rbp); Insn.Pop Reg.Rbp; Insn.Ret ]
  in
  let program =
    { Insn.prog_name = ak.M.ak_name; prog_insns = prologue @ body @ epilogue }
  in
  (* generation-time postcondition (debug / verify builds): the static
     checker must find nothing wrong with what we just emitted *)
  if Augem_analysis.Asmcheck.postcondition_enabled () then
    Augem_analysis.Asmcheck.check_exn
      ~config:
        (Augem_analysis.Asmcheck.config_for
           ~avx:(arch.Arch.simd = Arch.AVX)
           ~params:ak.M.ak_params)
      program;
  program

(* Convenience: optimize + identify + generate from low-level C. *)
let generate ~(arch : Arch.t) ?(opts = default_options) (k : Ast.kernel) :
    Insn.program =
  generate_annotated ~arch ~opts (M.identify k)
