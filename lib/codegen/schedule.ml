(* Instruction scheduling (the "Instruction Selection/Scheduling" leg
   of the Template Optimizer): a resource-constrained list scheduler
   applied per basic block, using the dependence graph and the
   architecture's latency/throughput tables.  The result is a
   dependence-equivalent reordering that hides load and multiply
   latencies, as a hand-tuned kernel would. *)

open Augem_machine

(* A basic block boundary: labels, branches, returns, stack ops.
   [Vzeroupper] pins too — it reads and writes no tracked register, so
   the scheduler would otherwise float it into the body, breaking the
   "clean uppers at Ret" discipline that [Asmcheck] enforces. *)
let is_boundary = function
  | Insn.Label _ | Insn.Jmp _ | Insn.Jcc _ | Insn.Ret | Insn.Push _
  | Insn.Pop _ | Insn.Vzeroupper ->
      true
  | _ -> false

let split_blocks (insns : Insn.t list) :
    [ `Block of Insn.t list | `Pin of Insn.t ] list =
  let rec go acc cur = function
    | [] ->
        let acc = if cur = [] then acc else `Block (List.rev cur) :: acc in
        List.rev acc
    | i :: rest ->
        if is_boundary i then
          let acc = if cur = [] then acc else `Block (List.rev cur) :: acc in
          go (`Pin i :: acc) [] rest
        else go acc (i :: cur) rest
  in
  go [] [] insns

(* List-schedule one straight-line block. *)
let schedule_block (arch : Arch.t) (insns : Insn.t list) : Insn.t list =
  let comments, insns =
    List.partition (function Insn.Comment _ -> true | _ -> false) insns
  in
  if List.length insns <= 1 then comments @ insns
  else
    let order, _ = Depgraph.list_schedule arch insns in
    let arr = Array.of_list insns in
    comments @ List.map (fun id -> arr.(id)) order

(* Schedule a whole program, block by block. *)
let run (arch : Arch.t) (p : Insn.program) : Insn.program =
  let insns =
    split_blocks p.Insn.prog_insns
    |> List.concat_map (function
         | `Pin i -> [ i ]
         | `Block b -> schedule_block arch b)
  in
  { p with Insn.prog_insns = insns }
