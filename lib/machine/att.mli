(** AT&T-syntax printing of the generated assembly.

    When [avx] is set, three-operand VEX encodings are used throughout;
    otherwise legacy SSE two-operand encodings are printed, which
    requires [dst = src1] on register-register operations — instruction
    selection maintains that invariant and the printer enforces it.

    [et] selects the element type of every FP mnemonic (sd/pd vs
    ss/ps, vbroadcastsd vs vbroadcastss, movq vs movd, ...); it
    defaults to [Etype.F64], the historic output. *)

exception Print_error of string

(** One instruction, without trailing newline. *)
val insn_str : et:Etype.t -> avx:bool -> Insn.t -> string

(** A complete listing with [.text]/[.globl]/[.size] directives. *)
val program_to_string : ?avx:bool -> ?et:Etype.t -> Insn.program -> string
