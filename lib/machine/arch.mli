(** Architecture specifications: the paper's two evaluation CPUs
    (Table 5) plus a Haswell-class portability target, with the knobs
    the code generator and the cycle model need.  Latency/throughput
    numbers follow the published microarchitecture references; the
    cycle model depends only on their relative magnitudes. *)

type simd_mode =
  | SSE  (** 128-bit, two-operand encodings *)
  | AVX  (** 256-bit, three-operand VEX encodings *)

type fma_mode =
  | No_fma
  | FMA3
  | FMA4

type t = {
  name : string;
  vendor : string;
  model : string;
  freq_ghz : float;  (** base frequency, as in Table 5 *)
  turbo_ghz : float;  (** sustained single-core turbo used by the model *)
  simd : simd_mode;
  fma : fma_mode;
  vec_bits : int;  (** architectural vector width *)
  native_fp_bits : int;
      (** datapath width of one FP unit: 256 on Sandy Bridge, 128 on
          Piledriver (256-bit ops split into two internal uops) *)
  vregs : int;
  fp_add_tp : int;  (** independent FP add pipes *)
  fp_mul_tp : int;
  fp_fma_tp : int;  (** 0 when [fma = No_fma] *)
  fp_shuf_tp : int;
  load_tp : int;  (** 128-bit load slots per cycle *)
  store_tp : int;
  int_tp : int;
  issue_width : int;  (** total uops issued per cycle *)
  lat_add : int;
  lat_mul : int;
  lat_fma : int;
  lat_load : int;  (** L1 hit *)
  lat_shuf : int;
  l1_bytes : int;
  l2_bytes : int;
  l3_bytes : int;
  bw_l1 : float;  (** sustainable bytes/cycle *)
  bw_l2 : float;
  bw_l3 : float;
  bw_mem : float;
  hw_prefetch : float;
      (** hardware-prefetcher effectiveness applied when a kernel
          issues no software prefetches *)
  cores_per_socket : int;
  sockets : int;
  compiler : string;  (** Table 5 row *)
}

val sandy_bridge : t
(** Intel Xeon E5-2680: AVX, no FMA, native 256-bit units. *)

val piledriver : t
(** AMD Opteron 6380: FMA3/FMA4 on two shared 128-bit FMAC pipes. *)

val haswell : t
(** Portability target the paper never saw: AVX2-class, dual 256-bit
    FMA pipes. *)

val all : t list
(** The paper's two evaluation platforms (Sandy Bridge, Piledriver).
    {!extended} additionally contains the Haswell portability target
    this reproduction models beyond the paper. *)

val extended : t list
(** Every modelled architecture: [all] plus the Haswell portability
    target. *)

val names : unit -> string list
(** Names of every modelled architecture, in {!extended} order. *)

val by_name : string -> t option

val by_name_result : string -> (t, string) result
(** Like {!by_name}, but failures carry a message listing the valid
    architecture names (what CLI [--arch] errors print). *)

(** Peak MFLOPS of one core at the modelled (turbo) frequency for the
    given element type (default double precision; single precision
    doubles the lanes per vector). *)
val peak_mflops : ?et:Etype.t -> t -> float

(** Issue slots one operation of the given width occupies (wide vector
    ops on a narrow datapath split). *)
val uops_for : t -> Insn.vwidth -> int

val simd_lanes : ?et:Etype.t -> t -> int
val fma_available : t -> bool

(** Table 5 rows: (label, Intel value, AMD value). *)
val table5_rows : unit -> (string * string * string) list
