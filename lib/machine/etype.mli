(** The scalar element type (precision) of a generated kernel.

    Every precision-dependent fact in the stack — element byte size,
    lanes per vector width, mnemonic suffix, comparison tolerance,
    f32 rounding — is derived from this one module.  [F64] is the
    default of every [?et] argument downstream, keeping the historic
    double-precision outputs bit-identical. *)

type t =
  | F32
  | F64

val bytes : t -> int
(** Element size in bytes: 4 / 8. *)

val bits : t -> int
(** Element size in bits: 32 / 64. *)

val name : t -> string
(** Wire/CLI spelling: ["f32"] / ["f64"]. *)

val of_name : string -> t option
(** Inverse of [name]; also accepts ["float"]/["single"] and
    ["double"]. *)

val all : t list
(** Both precisions, [F32] first. *)

val suffix : t -> string
(** The AT&T mnemonic suffix letter: ["s"] / ["d"]. *)

val scalar_suffix : t -> string
(** ["ss"] / ["sd"]. *)

val packed_suffix : t -> string
(** ["ps"] / ["pd"]. *)

val blas_prefix : t -> string
(** BLAS routine prefix: ["s"] / ["d"]. *)

val epsilon : t -> float
(** Unit roundoff: 2{^-23} / 2{^-52}. *)

val tol : ?k:int -> t -> float
(** Relative comparison tolerance for a value accumulated over [k]
    summands: [max floor (4 * k * epsilon)], with a per-type floor
    (1e-6 for f32, the historic 1e-9 for f64). *)

val round : t -> float -> float
(** Round to this precision ([F32]: via the IEEE binary32 bit pattern;
    [F64]: identity). *)
