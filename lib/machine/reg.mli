(** x86-64 register model: 16 general-purpose registers and 16 SIMD
    registers (xmm0-15 / ymm0-15 — one file). *)

type gpr =
  | Rax
  | Rbx
  | Rcx
  | Rdx
  | Rsi
  | Rdi
  | Rbp
  | Rsp
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

val all_gprs : gpr list
val gpr_name : gpr -> string

val gpr_name32 : gpr -> string
(** 32-bit sub-register spelling (eax, r8d, ...), used by movd. *)

val gpr_index : gpr -> int

(** System V AMD64: integer/pointer argument registers, in order. *)
val argument_gprs : gpr list

val callee_saved : gpr list

(** Registers available as scratch to generated kernels, caller-saved
    first. *)
val scratch_gprs : gpr list

(** SIMD register index, 0..15. *)
type vreg = int

val vreg_count : int

(** Either register file, for dependence analysis. *)
type t =
  | Gp of gpr
  | Vr of vreg

val name : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool
