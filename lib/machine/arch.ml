(* Architecture specifications for the two processors evaluated in the
   paper (Table 5), plus the knobs the code generator and the cycle
   model need.  Latency/throughput numbers follow the published
   microarchitecture references (Fog's instruction tables); the cycle
   model only depends on their relative magnitudes. *)

type simd_mode =
  | SSE (* 128-bit, two-operand encodings *)
  | AVX (* 256-bit, three-operand encodings *)

type fma_mode =
  | No_fma
  | FMA3
  | FMA4

type t = {
  name : string;
  vendor : string;
  model : string;
  freq_ghz : float; (* base frequency, as in Table 5 *)
  turbo_ghz : float; (* sustained single-core turbo, used by the model *)
  simd : simd_mode;
  fma : fma_mode;
  vec_bits : int; (* architectural vector width: 256 on both *)
  native_fp_bits : int;
      (* datapath width of one FP unit: 256 on Sandy Bridge, 128 on
         Piledriver (256-bit ops split into two internal uops) *)
  vregs : int;
  (* execution resources, counted in native_fp_bits-wide slots/cycle *)
  fp_add_tp : int; (* independent FP add pipes *)
  fp_mul_tp : int;
  fp_fma_tp : int; (* 0 when fma = No_fma *)
  fp_shuf_tp : int;
  load_tp : int; (* 128-bit load slots per cycle *)
  store_tp : int;
  int_tp : int; (* simple ALU ops per cycle *)
  issue_width : int; (* total uops issued per cycle *)
  (* latencies in cycles *)
  lat_add : int;
  lat_mul : int;
  lat_fma : int;
  lat_load : int; (* L1 hit *)
  lat_shuf : int;
  (* memory hierarchy (per core unless noted) *)
  l1_bytes : int;
  l2_bytes : int;
  l3_bytes : int; (* shared; 0 if none modelled *)
  bw_l1 : float; (* sustainable load bytes/cycle *)
  bw_l2 : float;
  bw_l3 : float;
  bw_mem : float; (* DRAM bytes/cycle per core *)
  hw_prefetch : float;
      (* effectiveness of the hardware prefetcher when software issues
         no prefetches (scales the no-sw-prefetch bandwidth fraction) *)
  cores_per_socket : int;
  sockets : int;
  compiler : string; (* Table 5 row *)
}

(* Intel Sandy Bridge Xeon E5-2680, 2.7 GHz (Table 5).  AVX without
   FMA: one 256-bit multiply and one 256-bit add per cycle (ports 0/1),
   8 DP flops/cycle peak.  Two 128-bit load slots per cycle, so a
   256-bit load occupies both. *)
let sandy_bridge : t =
  {
    name = "sandybridge";
    vendor = "Intel";
    model = "Xeon E5-2680 (Sandy Bridge)";
    freq_ghz = 2.7;
    turbo_ghz = 3.1;
    simd = AVX;
    fma = No_fma;
    vec_bits = 256;
    native_fp_bits = 256;
    vregs = 16;
    fp_add_tp = 1;
    fp_mul_tp = 1;
    fp_fma_tp = 0;
    fp_shuf_tp = 1;
    load_tp = 2;
    store_tp = 1;
    int_tp = 3;
    issue_width = 6;
    lat_add = 3;
    lat_mul = 5;
    lat_fma = 0;
    lat_load = 4;
    lat_shuf = 1;
    l1_bytes = 32 * 1024;
    l2_bytes = 256 * 1024;
    l3_bytes = 20 * 1024 * 1024;
    bw_l1 = 32.0;
    bw_l2 = 16.0;
    bw_l3 = 10.0;
    bw_mem = 5.0;
    hw_prefetch = 1.0;
    cores_per_socket = 8;
    sockets = 2;
    compiler = "gcc-4.7.2";
  }

(* AMD Piledriver Opteron 6380, 2.5 GHz (Table 5).  Two shared 128-bit
   FMAC pipes per module: FMA3/FMA4 supported, 8 DP flops/cycle peak
   per core when both pipes are used; 256-bit operations split into two
   128-bit uops.  16KB write-through L1d, large 2MB L2. *)
let piledriver : t =
  {
    name = "piledriver";
    vendor = "AMD";
    model = "Opteron 6380 (Piledriver)";
    freq_ghz = 2.5;
    turbo_ghz = 2.8;
    simd = AVX;
    fma = FMA3; (* ACML_FMA=3 in the paper; FMA4 also available *)
    vec_bits = 256;
    native_fp_bits = 128;
    vregs = 16;
    fp_add_tp = 2; (* the two FMAC pipes execute add/mul/fma *)
    fp_mul_tp = 2;
    fp_fma_tp = 2;
    fp_shuf_tp = 2;
    load_tp = 2;
    store_tp = 1;
    int_tp = 2;
    issue_width = 4;
    lat_add = 5;
    lat_mul = 5;
    lat_fma = 6;
    lat_load = 4;
    lat_shuf = 2;
    l1_bytes = 16 * 1024;
    l2_bytes = 2048 * 1024;
    l3_bytes = 8 * 1024 * 1024;
    bw_l1 = 24.0;
    bw_l2 = 12.0;
    bw_l3 = 8.0;
    bw_mem = 4.5;
    hw_prefetch = 0.85;
    cores_per_socket = 8;
    sockets = 2;
    compiler = "gcc-4.7.2";
  }

(* A forward-portability target the paper never saw: a Haswell-class
   core (AVX2, two 256-bit FMA pipes).  Retargeting the same C inputs
   here with zero manual work is the paper's thesis; the tuner picks a
   new blocking and the instruction selector switches to FMA3 at full
   256-bit width. *)
let haswell : t =
  {
    name = "haswell";
    vendor = "Intel";
    model = "Core i7-4770 (Haswell)";
    freq_ghz = 3.4;
    turbo_ghz = 3.7;
    simd = AVX;
    fma = FMA3;
    vec_bits = 256;
    native_fp_bits = 256;
    vregs = 16;
    fp_add_tp = 1;
    fp_mul_tp = 2;
    fp_fma_tp = 2;
    fp_shuf_tp = 1;
    load_tp = 4; (* two 256-bit load ports *)
    store_tp = 2;
    int_tp = 4;
    issue_width = 8;
    lat_add = 3;
    lat_mul = 5;
    lat_fma = 5;
    lat_load = 4;
    lat_shuf = 1;
    l1_bytes = 32 * 1024;
    l2_bytes = 256 * 1024;
    l3_bytes = 8 * 1024 * 1024;
    bw_l1 = 64.0;
    bw_l2 = 28.0;
    bw_l3 = 16.0;
    bw_mem = 6.5;
    hw_prefetch = 1.0;
    cores_per_socket = 4;
    sockets = 1;
    compiler = "gcc-4.7.2";
  }

(* The paper's two evaluation platforms (Sandy Bridge and Piledriver);
   [extended] additionally has the Haswell portability target this
   reproduction models beyond the paper. *)
let all = [ sandy_bridge; piledriver ]

(* Every modelled architecture: [all] plus Haswell. *)
let extended = all @ [ haswell ]

let names () = List.map (fun a -> a.name) extended

let by_name n =
  List.find_opt (fun a -> String.equal a.name n) extended

let by_name_result n =
  match by_name n with
  | Some a -> Ok a
  | None ->
      Error
        (Printf.sprintf "unknown architecture %S (valid: %s)" n
           (String.concat ", " (names ())))

(* Peak MFLOPS of one core at the modelled frequency, per element
   type (single precision doubles the lanes per vector). *)
let peak_mflops ?(et = Etype.F64) (a : t) : float =
  let native_lanes = a.native_fp_bits / Etype.bits et in
  let flops_per_cycle =
    match a.fma with
    | No_fma ->
        (* mul + add pipes, native width *)
        float_of_int ((a.fp_mul_tp + a.fp_add_tp) * native_lanes)
    | FMA3 | FMA4 -> float_of_int (2 * a.fp_fma_tp * native_lanes)
  in
  flops_per_cycle *. a.turbo_ghz *. 1000.0

(* How many native_fp_bits-wide uops one operation of width [w] costs. *)
let uops_for (a : t) (w : Insn.vwidth) : int =
  let bits = Insn.width_bits w in
  max 1 ((bits + a.native_fp_bits - 1) / a.native_fp_bits)

let simd_lanes ?(et = Etype.F64) (a : t) : int = a.vec_bits / Etype.bits et

let fma_available (a : t) = a.fma <> No_fma

(* Table 5 as printable rows. *)
let table5_rows () : (string * string * string) list =
  let f spec = spec in
  let row label get = (label, f (get sandy_bridge), f (get piledriver)) in
  [
    row "CPU" (fun a -> a.model);
    row "Frequency" (fun a -> Printf.sprintf "%.1f GHz" a.freq_ghz);
    row "L1d Cache" (fun a -> Printf.sprintf "%dKB" (a.l1_bytes / 1024));
    row "L2 Cache" (fun a -> Printf.sprintf "%dKB" (a.l2_bytes / 1024));
    row "Vector Size" (fun a -> Printf.sprintf "%d-bit" a.vec_bits);
    row "Core(s) per socket" (fun a -> string_of_int a.cores_per_socket);
    row "CPU socket(s)" (fun a -> string_of_int a.sockets);
    row "Compiler" (fun a -> a.compiler);
  ]
