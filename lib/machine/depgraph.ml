(* Dependence graph over straight-line instruction sequences, shared by
   the instruction scheduler (codegen) and the cycle-level performance
   model (sim).  Edges cover register RAW/WAR/WAW, flags, and memory
   ordering with a light disambiguation: accesses through the same
   (base, index, scale) at non-overlapping displacement ranges are
   independent, everything else involving a store is ordered. *)

module RM = Map.Make (struct
  type t = Reg.t

  let compare = Reg.compare
end)

type node = {
  id : int;
  insn : Insn.t;
  mutable preds : (int * int) list; (* (pred id, latency of edge) *)
  mutable succs : int list;
}

type t = {
  nodes : node array;
}

let mem_footprint (i : Insn.t) : (Insn.mem * int * bool) option =
  (* (operand, bytes, is_store) *)
  match i with
  | Insn.Vload { w; src; _ } | Insn.Vbroadcast { w; src; _ } ->
      Some (src, Insn.width_bits w / 8, false)
  | Insn.Vstore { w; dst; _ } -> Some (dst, Insn.width_bits w / 8, true)
  | Insn.Loadq (_, m) -> Some (m, 8, false)
  | Insn.Storeq (m, _) -> Some (m, 8, true)
  | _ -> None

let mem_independent (m1, s1) (m2, s2) =
  m1.Insn.base = m2.Insn.base
  && m1.Insn.index = m2.Insn.index
  && (m1.Insn.disp + s1 <= m2.Insn.disp || m2.Insn.disp + s2 <= m1.Insn.disp)

(* Latency of the value produced by [i] (cycles until consumers can
   start), from the architecture's tables. *)
let latency (arch : Arch.t) (i : Insn.t) : int =
  match Insn.unit_of i with
  | Insn.U_fp_add -> arch.Arch.lat_add
  | Insn.U_fp_mul -> arch.Arch.lat_mul
  | Insn.U_fp_fma -> arch.Arch.lat_fma
  | Insn.U_fp_shuf -> arch.Arch.lat_shuf
  | Insn.U_load -> arch.Arch.lat_load
  | Insn.U_store -> 1
  | Insn.U_int -> 1
  | Insn.U_branch -> 1
  | Insn.U_none -> 0

(* Number of issue slots one instruction occupies (wide vector ops on a
   narrow datapath split into multiple uops). *)
let uops (arch : Arch.t) (i : Insn.t) : int =
  match i with
  | Insn.Vop { w; _ } | Insn.Vfma4 { w; _ } | Insn.Vload { w; _ }
  | Insn.Vstore { w; _ } | Insn.Vbroadcast { w; _ } | Insn.Vshuf { w; _ }
  | Insn.Vblend { w; _ } ->
      Arch.uops_for arch w
  | Insn.Vperm128 _ | Insn.Vextract128 _ -> 1
  (* vzeroupper is 1 uop on both modelled microarchitectures and, being
     confined to the epilogue, never shares an issue group with FP work *)
  | Insn.Vzeroupper -> 1
  | _ -> 1

(* Build the dependence DAG of [insns] (assumed branch-free).  When
   [carried] is set, register dependences wrap around from the end of
   the sequence to the beginning, modelling a loop body in steady
   state (used by the cycle model, not the scheduler). *)
let build ?(arch : Arch.t option = None) ?(rename = false)
    (insns : Insn.t list) : t =
  let lat i =
    match arch with Some a -> max 1 (latency a i) | None -> 1
  in
  let nodes =
    Array.of_list
      (List.mapi (fun id insn -> { id; insn; preds = []; succs = [] }) insns)
  in
  let add_edge src dst latency =
    if src <> dst then begin
      let n = nodes.(dst) in
      if not (List.mem_assoc src n.preds) then begin
        n.preds <- (src, latency) :: n.preds;
        nodes.(src).succs <- dst :: nodes.(src).succs
      end
    end
  in
  let last_writer : int RM.t ref = ref RM.empty in
  let readers_since : int list RM.t ref = ref RM.empty in
  let last_flag_writer = ref (-1) in
  let flag_readers = ref [] in
  let mem_ops = ref [] in
  (* register versions for address comparison: a pointer bumped between
     two accesses makes their addresses differ even though the operand
     text is identical (iteration replicas in the cycle model) *)
  let reg_version : int RM.t ref = ref RM.empty in
  let version r = Option.value ~default:0 (RM.find_opt r !reg_version) in
  let mem_key (m : Insn.mem) =
    ( m.Insn.base,
      version (Reg.Gp m.Insn.base),
      Option.map (fun (r, s) -> (r, version (Reg.Gp r), s)) m.Insn.index )
  in
  Array.iter
    (fun n ->
      let i = n.insn in
      (* register RAW *)
      List.iter
        (fun r ->
          (match RM.find_opt r !last_writer with
          | Some w -> add_edge w n.id (lat nodes.(w).insn)
          | None -> ());
          readers_since :=
            RM.update r
              (function None -> Some [ n.id ] | Some l -> Some (n.id :: l))
              !readers_since)
        (Insn.reads i);
      (* register WAR and WAW; an out-of-order core renames these
         away, so the cycle model builds with [rename] set *)
      List.iter
        (fun r ->
          if not rename then begin
            (match RM.find_opt r !readers_since with
            | Some rs -> List.iter (fun rd -> add_edge rd n.id 0) rs
            | None -> ());
            match RM.find_opt r !last_writer with
            | Some w -> add_edge w n.id 0
            | None -> ()
          end;
          last_writer := RM.add r n.id !last_writer;
          reg_version := RM.add r (version r + 1) !reg_version;
          readers_since := RM.add r [] !readers_since)
        (Insn.writes i);
      (* flags *)
      if Insn.reads_flags i then begin
        if !last_flag_writer >= 0 then add_edge !last_flag_writer n.id 1;
        flag_readers := n.id :: !flag_readers
      end;
      if Insn.sets_flags i then begin
        List.iter (fun rd -> add_edge rd n.id 0) !flag_readers;
        if !last_flag_writer >= 0 then add_edge !last_flag_writer n.id 0;
        last_flag_writer := n.id;
        flag_readers := []
      end;
      (* memory ordering.  The static scheduler must stay conservative
         (different base registers may alias); the out-of-order cycle
         model ([rename]) assumes the core's memory disambiguator
         resolves accesses through different bases, which holds for the
         distinct packed streams of these kernels. *)
      (match mem_footprint i with
      | None -> ()
      | Some (m, sz, is_store) ->
          let key = mem_key m in
          let may_alias (m1, s1, k1) (m2, s2, k2) =
            if k1 = k2 && mem_independent (m1, s1) (m2, s2) then false
            else if rename then
              (* the OOO disambiguator: same base/index registers at the
                 same version — otherwise the addresses moved *)
              k1 = k2
            else true
          in
          List.iter
            (fun (id', m', sz', key', store') ->
              if
                (is_store || store')
                && may_alias (m, sz, key) (m', sz', key')
              then
                add_edge id' n.id (if store' then 1 else lat nodes.(id').insn)
            )
            !mem_ops;
          mem_ops := (n.id, m, sz, key, is_store) :: !mem_ops))
    nodes;
  { nodes }

(* Longest path to a sink, used as scheduling priority. *)
let heights ?(arch : Arch.t option = None) (g : t) : int array =
  let lat i = match arch with Some a -> max 1 (latency a i) | None -> 1 in
  let n = Array.length g.nodes in
  let h = Array.make n 0 in
  for id = n - 1 downto 0 do
    let node = g.nodes.(id) in
    let self = lat node.insn in
    h.(id) <-
      List.fold_left (fun acc s -> max acc (h.(s) + self)) self node.succs
  done;
  h

(* --- resource-constrained list scheduling ------------------------------ *)

(* Throughput (operations starting per cycle) of each unit class. *)
let unit_capacity (arch : Arch.t) = function
  | Insn.U_fp_add -> arch.Arch.fp_add_tp
  | Insn.U_fp_mul -> arch.Arch.fp_mul_tp
  | Insn.U_fp_fma -> max arch.Arch.fp_fma_tp 1
  | Insn.U_fp_shuf -> arch.Arch.fp_shuf_tp
  | Insn.U_load -> arch.Arch.load_tp
  | Insn.U_store -> arch.Arch.store_tp
  | Insn.U_int -> arch.Arch.int_tp
  | Insn.U_branch -> 1
  | Insn.U_none -> 1000

(* FMA-capable machines execute adds and multiplies on the FMA pipes;
   pool the three classes in that case. *)
let pool_of (arch : Arch.t) (u : Insn.unit_class) : Insn.unit_class =
  match u with
  | Insn.U_fp_add | Insn.U_fp_mul | Insn.U_fp_fma ->
      if arch.Arch.fma <> Arch.No_fma then Insn.U_fp_fma else u
  | u -> u

(* Greedy cycle-by-cycle list scheduling of a straight-line sequence.
   Returns the issue order (node ids) and the makespan in cycles. *)
let list_schedule ?(rename = false) ?(in_order = false) (arch : Arch.t)
    (insns : Insn.t list) : int list * int =
  let n = List.length insns in
  if n = 0 then ([], 0)
  else begin
    let g = build ~arch:(Some arch) ~rename insns in
    let height = heights ~arch:(Some arch) g in
    let indegree = Array.map (fun nd -> List.length nd.preds) g.nodes in
    let ready_time = Array.make n 0 in
    let scheduled = Array.make n false in
    let finish = Array.make n 0 in
    let order = ref [] in
    let cycle = ref 0 in
    let remaining = ref n in
    let makespan = ref 0 in
    (* unit occupancy carried into the next cycle by instructions wider
       than a port (e.g. 256-bit ops on a 128-bit datapath) *)
    let carry = Hashtbl.create 8 in
    while !remaining > 0 do
      let used = Hashtbl.copy carry in
      Hashtbl.reset carry;
      let issued = ref 0 in
      let progress = ref true in
      while !progress && !issued < arch.Arch.issue_width do
        progress := false;
        let best = ref (-1) in
        (* an in-order front end may only issue the next instruction in
           program order; an out-of-order core picks by priority *)
        let first_unscheduled =
          let r = ref n in
          (try
             for id = 0 to n - 1 do
               if not scheduled.(id) then begin
                 r := id;
                 raise Exit
               end
             done
           with Exit -> ());
          !r
        in
        for id = 0 to n - 1 do
          if
            (not scheduled.(id))
            && indegree.(id) = 0
            && ready_time.(id) <= !cycle
            && ((not in_order) || id = first_unscheduled)
          then begin
            let u = pool_of arch (Insn.unit_of g.nodes.(id).insn) in
            let cap = unit_capacity arch u in
            let used_u = Option.value ~default:0 (Hashtbl.find_opt used u) in
            let cost = uops arch g.nodes.(id).insn in
            if used_u + cost <= cap || (used_u = 0 && cost > cap) then
              if !best < 0 || height.(id) > height.(!best) then best := id
          end
        done;
        if !best >= 0 then begin
          let id = !best in
          scheduled.(id) <- true;
          decr remaining;
          incr issued;
          progress := true;
          let u = pool_of arch (Insn.unit_of g.nodes.(id).insn) in
          let cost = uops arch g.nodes.(id).insn in
          let cap = unit_capacity arch u in
          let used_u = Option.value ~default:0 (Hashtbl.find_opt used u) in
          Hashtbl.replace used u (used_u + cost);
          if used_u + cost > cap then
            Hashtbl.replace carry u (used_u + cost - cap);
          order := id :: !order;
          let lat = max 1 (latency arch g.nodes.(id).insn) in
          finish.(id) <- !cycle + lat;
          makespan := max !makespan finish.(id);
          List.iter
            (fun s ->
              indegree.(s) <- indegree.(s) - 1;
              let edge_lat =
                match List.assoc_opt id g.nodes.(s).preds with
                | Some l -> l
                | None -> 1
              in
              ready_time.(s) <- max ready_time.(s) (!cycle + edge_lat))
            g.nodes.(id).succs
        end
      done;
      incr cycle
    done;
    (List.rev !order, max !makespan !cycle)
  end
