(* x86-64 register model: 16 general-purpose registers and 16 SIMD
   registers (xmm0-15 / ymm0-15, same file). *)

type gpr =
  | Rax
  | Rbx
  | Rcx
  | Rdx
  | Rsi
  | Rdi
  | Rbp
  | Rsp
  | R8
  | R9
  | R10
  | R11
  | R12
  | R13
  | R14
  | R15

let all_gprs =
  [ Rax; Rbx; Rcx; Rdx; Rsi; Rdi; Rbp; Rsp; R8; R9; R10; R11; R12; R13; R14;
    R15 ]

let gpr_name = function
  | Rax -> "rax"
  | Rbx -> "rbx"
  | Rcx -> "rcx"
  | Rdx -> "rdx"
  | Rsi -> "rsi"
  | Rdi -> "rdi"
  | Rbp -> "rbp"
  | Rsp -> "rsp"
  | R8 -> "r8"
  | R9 -> "r9"
  | R10 -> "r10"
  | R11 -> "r11"
  | R12 -> "r12"
  | R13 -> "r13"
  | R14 -> "r14"
  | R15 -> "r15"

(* 32-bit sub-register names, for movd (the f32 bit-pattern move). *)
let gpr_name32 = function
  | Rax -> "eax"
  | Rbx -> "ebx"
  | Rcx -> "ecx"
  | Rdx -> "edx"
  | Rsi -> "esi"
  | Rdi -> "edi"
  | Rbp -> "ebp"
  | Rsp -> "esp"
  | R8 -> "r8d"
  | R9 -> "r9d"
  | R10 -> "r10d"
  | R11 -> "r11d"
  | R12 -> "r12d"
  | R13 -> "r13d"
  | R14 -> "r14d"
  | R15 -> "r15d"

let gpr_index r =
  let rec go i = function
    | [] -> assert false
    | x :: rest -> if x = r then i else go (i + 1) rest
  in
  go 0 all_gprs

(* System V AMD64 calling convention. *)
let argument_gprs = [ Rdi; Rsi; Rdx; Rcx; R8; R9 ]
let callee_saved = [ Rbx; Rbp; R12; R13; R14; R15 ]

(* GPRs available as scratch to generated kernels, in allocation order:
   caller-saved first (no save/restore needed), callee-saved last. *)
let scratch_gprs = [ Rax; R10; R11; Rbx; Rbp; R12; R13; R14; R15 ]

type vreg = int (* 0..15: xmm<i> or ymm<i> depending on width *)

let vreg_count = 16

type t =
  | Gp of gpr
  | Vr of vreg

let name = function
  | Gp g -> "%" ^ gpr_name g
  | Vr i -> Printf.sprintf "%%v%d" i

let compare = compare
let equal (a : t) (b : t) = a = b
