(* AT&T-syntax printer: turns an [Insn.program] into an assembly
   listing as produced by the paper's Assembly Kernel Generator.  When
   [avx] is set, three-operand VEX encodings are used throughout;
   otherwise legacy SSE two-operand encodings are printed, which
   requires [dst = src1] on register-register operations (instruction
   selection maintains that invariant). *)

open Insn

exception Print_error of string

let err fmt = Fmt.kstr (fun s -> raise (Print_error s)) fmt

let vreg_name (w : vwidth) (r : Reg.vreg) =
  match w with
  | W64 | W128 -> Printf.sprintf "%%xmm%d" r
  | W256 -> Printf.sprintf "%%ymm%d" r

let gpr_name r = "%" ^ Reg.gpr_name r

let mem_str (m : mem) =
  let disp = if m.disp = 0 then "" else string_of_int m.disp in
  match m.index with
  | None -> Printf.sprintf "%s(%s)" disp (gpr_name m.base)
  | Some (idx, sc) ->
      Printf.sprintf "%s(%s,%s,%d)" disp (gpr_name m.base) (gpr_name idx)
        (scale_value sc)

let cond_suffix = function
  | Clt -> "l"
  | Cle -> "le"
  | Cgt -> "g"
  | Cge -> "ge"
  | Ceq -> "e"
  | Cne -> "ne"

(* The one place FP mnemonic suffixes are derived from the element
   type: [W64] is a scalar op (sd/ss), the packed widths get pd/ps.
   Everything below builds its mnemonics through these. *)
let fp_suffix ~(et : Etype.t) (w : vwidth) =
  match w with
  | W64 -> Etype.scalar_suffix et
  | W128 | W256 -> Etype.packed_suffix et

(* element-type suffixed mnemonic for a width *)
let sfx ~et ~avx base w =
  match (w, avx) with
  | _, true -> "v" ^ base ^ fp_suffix ~et w
  | (W64 | W128), false -> base ^ fp_suffix ~et w
  | W256, false -> err "256-bit %s requires AVX" base

(* Packed-only mnemonics (xor/unpck/shuf/blend operate on the full
   register regardless of the op width). *)
let packed ~et ~avx base =
  (if avx then "v" ^ base else base) ^ Etype.packed_suffix et

(* Cheap assert only: the SSE two-operand [dst = src1] invariant is
   enforced at generation time by [Asmcheck] (lint sse-two-operand), so
   this can no longer fire on checked programs.  It stays as a last
   line of defence for programs built by hand and printed directly. *)
let check_sse2op ~avx ~what dst src1 =
  if (not avx) && dst <> src1 then
    err "SSE two-operand %s with dst=%d <> src1=%d" what dst src1

let fpop_insn ~et ~avx (op : fpop) w dst src1 src2 =
  let v = vreg_name w in
  let two name =
    check_sse2op ~avx ~what:name dst src1;
    Printf.sprintf "%s %s, %s" name (v src2) (v dst)
  in
  let three name = Printf.sprintf "%s %s, %s, %s" name (v src2) (v src1) (v dst) in
  let arith base =
    if avx then three (sfx ~et ~avx base w) else two (sfx ~et ~avx base w)
  in
  match op with
  | Fadd -> arith "add"
  | Fsub -> arith "sub"
  | Fmul -> arith "mul"
  | Fdiv -> arith "div"
  | Fxor ->
      (* zeroing and bitwise ops are always full-register packed ops *)
      let name = packed ~et ~avx "xor" in
      if avx then three name else two name
  | Fmov ->
      let name = (if avx then "vmova" else "mova") ^ Etype.packed_suffix et in
      Printf.sprintf "%s %s, %s" name (v src1) (v dst)
  | Fma231 ->
      let name = "vfmadd231" ^ fp_suffix ~et w in
      Printf.sprintf "%s %s, %s, %s" name (v src2) (v src1) (v dst)
  | Fhadd ->
      let name = packed ~et ~avx "hadd" in
      if avx then three name else two name
  | Funpckl ->
      let name = packed ~et ~avx "unpckl" in
      if avx then three name else two name
  | Funpckh ->
      let name = packed ~et ~avx "unpckh" in
      if avx then three name else two name

let insn_str ~et ~avx (i : t) : string =
  let v = vreg_name in
  match i with
  | Vop { op; w; dst; src1; src2 } -> fpop_insn ~et ~avx op w dst src1 src2
  | Vfma4 { w; dst; a; b; c } ->
      let name = "vfmadd" ^ fp_suffix ~et w in
      Printf.sprintf "%s %s, %s, %s, %s" name (v w c) (v w b) (v w a) (v w dst)
  | Vload { w; dst; src } -> (
      match w with
      | W64 ->
          Printf.sprintf "%s %s, %s"
            (sfx ~et ~avx "mov" W64)
            (mem_str src) (v w dst)
      | W128 | W256 ->
          Printf.sprintf "%s %s, %s"
            ((if avx then "vmovu" else "movu") ^ Etype.packed_suffix et)
            (mem_str src) (v w dst))
  | Vstore { w; src; dst } -> (
      match w with
      | W64 ->
          Printf.sprintf "%s %s, %s"
            (sfx ~et ~avx "mov" W64)
            (v w src) (mem_str dst)
      | W128 | W256 ->
          Printf.sprintf "%s %s, %s"
            ((if avx then "vmovu" else "movu") ^ Etype.packed_suffix et)
            (v w src) (mem_str dst))
  | Vbroadcast { w; dst; src } -> (
      match (w, et) with
      | W64, _ ->
          Printf.sprintf "%s %s, %s"
            (sfx ~et ~avx "mov" W64)
            (mem_str src) (v w dst)
      | W128, Etype.F64 ->
          Printf.sprintf "%s %s, %s"
            (if avx then "vmovddup" else "movddup")
            (mem_str src) (v w dst)
      | W128, Etype.F32 ->
          if avx then
            Printf.sprintf "vbroadcastss %s, %s" (mem_str src) (v w dst)
          else err "SSE has no single-instruction f32 broadcast"
      | W256, _ ->
          Printf.sprintf "vbroadcast%s %s, %s" (Etype.scalar_suffix et)
            (mem_str src) (v w dst))
  | Vshuf { w; dst; src1; src2; imm } ->
      let name = packed ~et ~avx "shuf" in
      if avx then
        Printf.sprintf "%s $%d, %s, %s, %s" name imm (v w src2) (v w src1)
          (v w dst)
      else (
        check_sse2op ~avx ~what:name dst src1;
        Printf.sprintf "%s $%d, %s, %s" name imm (v w src2) (v w dst))
  | Vblend { w; dst; src1; src2; imm } ->
      let name = packed ~et ~avx "blend" in
      if avx then
        Printf.sprintf "%s $%d, %s, %s, %s" name imm (v w src2) (v w src1)
          (v w dst)
      else (
        check_sse2op ~avx ~what:name dst src1;
        Printf.sprintf "%s $%d, %s, %s" name imm (v w src2) (v w dst))
  | Vperm128 { dst; src1; src2; imm } ->
      Printf.sprintf "vperm2f128 $%d, %s, %s, %s" imm (v W256 src2)
        (v W256 src1) (v W256 dst)
  | Vextract128 { dst; src; lane } ->
      Printf.sprintf "vextractf128 $%d, %s, %s" lane (v W256 src) (v W128 dst)
  | Movq_xr { dst; src } -> (
      (* the FP-bit-pattern move: 64-bit movq for f64, 32-bit movd for
         f32 (only the low element-size bits carry the literal) *)
      match et with
      | Etype.F64 ->
          Printf.sprintf "%s %s, %s"
            (if avx then "vmovq" else "movq")
            (gpr_name src) (v W128 dst)
      | Etype.F32 ->
          Printf.sprintf "%s %%%s, %s"
            (if avx then "vmovd" else "movd")
            (Reg.gpr_name32 src) (v W128 dst))
  | Movri (r, n) -> Printf.sprintf "movq $%d, %s" n (gpr_name r)
  | Movabs (r, n) -> Printf.sprintf "movabsq $%Ld, %s" n (gpr_name r)
  | Movrr (d, s) -> Printf.sprintf "movq %s, %s" (gpr_name s) (gpr_name d)
  | Loadq (d, m) -> Printf.sprintf "movq %s, %s" (mem_str m) (gpr_name d)
  | Storeq (m, s) -> Printf.sprintf "movq %s, %s" (gpr_name s) (mem_str m)
  | Addri (r, n) -> Printf.sprintf "addq $%d, %s" n (gpr_name r)
  | Addrr (d, s) -> Printf.sprintf "addq %s, %s" (gpr_name s) (gpr_name d)
  | Subri (r, n) -> Printf.sprintf "subq $%d, %s" n (gpr_name r)
  | Subrr (d, s) -> Printf.sprintf "subq %s, %s" (gpr_name s) (gpr_name d)
  | Imulrr (d, s) -> Printf.sprintf "imulq %s, %s" (gpr_name s) (gpr_name d)
  | Imulri (d, s, n) ->
      Printf.sprintf "imulq $%d, %s, %s" n (gpr_name s) (gpr_name d)
  | Shlri (r, n) -> Printf.sprintf "shlq $%d, %s" n (gpr_name r)
  | Negr r -> Printf.sprintf "negq %s" (gpr_name r)
  | Lea (d, m) -> Printf.sprintf "leaq %s, %s" (mem_str m) (gpr_name d)
  | Cmprr (a, b) -> Printf.sprintf "cmpq %s, %s" (gpr_name b) (gpr_name a)
  | Cmpri (a, n) -> Printf.sprintf "cmpq $%d, %s" n (gpr_name a)
  | Label l -> l ^ ":"
  | Jmp l -> "jmp " ^ l
  | Jcc (c, l) -> Printf.sprintf "j%s %s" (cond_suffix c) l
  | Push r -> "pushq " ^ gpr_name r
  | Pop r -> "popq " ^ gpr_name r
  | Ret -> "ret"
  | Vzeroupper -> "vzeroupper"
  | Prefetch (Pf_t0, m) -> "prefetcht0 " ^ mem_str m
  | Prefetch (Pf_w, m) -> "prefetchw " ^ mem_str m
  | Comment c -> "# " ^ c

let program_to_string ?(avx = true) ?(et = Etype.F64) (p : program) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "\t.text\n\t.globl %s\n\t.type %s, @function\n%s:\n"
                           p.prog_name p.prog_name p.prog_name);
  List.iter
    (fun i ->
      (match i with
      | Label _ -> Buffer.add_string buf (insn_str ~et ~avx i)
      | Comment _ -> Buffer.add_string buf ("\t" ^ insn_str ~et ~avx i)
      | _ -> Buffer.add_string buf ("\t" ^ insn_str ~et ~avx i));
      Buffer.add_char buf '\n')
    p.prog_insns;
  Buffer.add_string buf
    (Printf.sprintf "\t.size %s, .-%s\n" p.prog_name p.prog_name);
  Buffer.contents buf
