(* The scalar element type of a generated kernel: the one place the
   rest of the stack derives precision-dependent facts from.  Byte
   size, lane counts, mnemonic suffixes, peak-FLOPS scaling and
   comparison tolerances all come from here, so adding a precision is
   a matter of extending this module — not of hunting string literals
   and hard-coded 8s through the printer, the vectorizer and the
   models.

   F64 is the default everywhere (every [?et] optional argument in the
   stack defaults to it), which keeps the pre-existing double-precision
   behaviour — generated assembly, goldens, cache content addresses —
   bit-for-bit identical. *)

type t =
  | F32
  | F64

let bytes = function F32 -> 4 | F64 -> 8
let bits = function F32 -> 32 | F64 -> 64

(* Wire/CLI spelling ("precision" fields, --precision flags, bench
   artifact names). *)
let name = function F32 -> "f32" | F64 -> "f64"

let of_name = function
  | "f32" | "float" | "single" -> Some F32
  | "f64" | "double" -> Some F64
  | _ -> None

let all = [ F32; F64 ]

(* The AT&T mnemonic suffix letter: addSS/addPS vs addSD/addPD,
   vbroadcastSS vs vbroadcastSD, ... *)
let suffix = function F32 -> "s" | F64 -> "d"

let scalar_suffix t = "s" ^ suffix t
let packed_suffix t = "p" ^ suffix t

(* The BLAS-style kernel-name prefix: Sgemm vs Dgemm. *)
let blas_prefix = function F32 -> "s" | F64 -> "d"

(* Unit roundoff. *)
let epsilon = function
  | F32 -> 1.19209289550781250e-07 (* 2^-23 *)
  | F64 -> 2.220446049250313e-16 (* 2^-52 *)

(* Relative comparison tolerance for a result accumulated over [k]
   summands: a small constant times k * eps (the worst-case
   accumulation bound), floored so tiny reductions keep a sane gate.
   The F64 floor is the historic 1e-9 differential gate; with k*eps
   scaling it stays exactly 1e-9 for every realistic K (4 * 1e6 *
   eps_f64 < 1e-9), so existing double-precision gates are
   unchanged. *)
let tol ?(k = 1) t =
  let floor = match t with F32 -> 1e-6 | F64 -> 1e-9 in
  Float.max floor (4.0 *. float_of_int (max 1 k) *. epsilon t)

(* Round a real (held as an OCaml float) to this precision: the
   functional simulator applies it after every f32 arithmetic
   operation; for f64 it is the identity. *)
let round t (x : float) : float =
  match t with
  | F64 -> x
  | F32 -> Int32.float_of_bits (Int32.bits_of_float x)
