(* Wire protocol: line-delimited JSON request/response.  See proto.mli
   for the grammar. *)

module A = Augem
module Json = A.Json
module Kernels = A.Ir.Kernels
module Arch = A.Machine.Arch
module Pipeline = A.Transform.Pipeline
module Prefetch = A.Transform.Prefetch
module Plan = A.Codegen.Plan
module Insn = A.Machine.Insn
module Emit = A.Codegen.Emit
module Tuner = A.Tuner
module Etype = A.Machine.Etype

type tune_request = {
  tq_kernel : Kernels.name;
  tq_arch : Arch.t;
  tq_et : Etype.t;
  tq_space : Tuner.candidate list option;
  tq_deadline_ms : float option;
}

type blocked_request = {
  bq_arch : Arch.t;
  bq_et : Etype.t;
  bq_m : int;
  bq_n : int;
  bq_k : int;
  bq_deadline_ms : float option;
}

type op =
  | Op_tune of tune_request
  | Op_blocked of blocked_request
  | Op_stats
  | Op_ping
  | Op_shutdown
type request = { rq_id : Json.t; rq_op : op }
type tier = T_memory | T_disk | T_tuned | T_coalesced

let tier_to_string = function
  | T_memory -> "memory"
  | T_disk -> "disk"
  | T_tuned -> "tuned"
  | T_coalesced -> "coalesced"

type provenance = {
  pv_tier : tier;
  pv_config : string;
  pv_mflops : float;
  pv_visited : int;
  pv_discarded : int;
  pv_fell_back : bool;
  pv_deadline_expired : bool;
  pv_breaker_open : bool;
      (** served the baseline because the key's circuit is open *)
  pv_tuning_ms : float;
}

type reply =
  | R_kernel of {
      rk_kernel : string;
      rk_arch : string;
      rk_assembly : string;
      rk_provenance : provenance;
      rk_degraded : bool;
    }
  | R_blocked of {
      rb_arch : string;
      rb_mc : int;
      rb_kc : int;
      rb_nc : int;
      rb_mr : int;
      rb_nr : int;
      rb_micro_config : string;
      rb_micro_assembly : string;
      rb_pack_a_assembly : string;
      rb_pack_b_assembly : string;
      rb_blocked_mflops : float;
      rb_streamed_mflops : float;
      rb_tier : tier;
      rb_degraded : bool;
      rb_tuning_ms : float;
    }
  | R_stats of Json.t
  | R_pong
  | R_shutting_down

type error = { e_code : string; e_detail : string }

let e_overload = "E_overload"
let e_bad_request = "E_bad_request"
let e_shutting_down = "E_shutting_down"
let e_internal = "E_internal"

(* not a response error code: annotates a degraded reply whose key is
   being short-circuited by the registry's breaker *)
let e_circuit_open = "E_circuit_open"

type response = { rs_id : Json.t; rs_result : (reply, error) Stdlib.result }

exception Overload of string

(* --- candidate (search-space override) decoding ------------------------- *)

(* {"jam":[["j",4],["i",8]], "unroll":["i",8], "expand":8,
    "prefetch":{"distance":8,"stores":true}, "prefer":"auto",
    "width":128}; every field optional, defaults = the pipeline's. *)

let ( let* ) = Result.bind

let as_int what = function
  | Json.Int i -> Ok i
  | _ -> Error (what ^ " must be an integer")

let var_factor what = function
  | Json.List [ Json.String v; Json.Int f ] -> Ok (v, f)
  | _ -> Error (what ^ " must be a [\"var\",factor] pair")

let candidate_of_json (j : Json.t) : (Tuner.candidate, string) Stdlib.result =
  match j with
  | Json.Obj fields ->
      let unknown =
        List.find_opt
          (fun (k, _) ->
            not
              (List.mem k
                 [
                   "jam"; "unroll"; "expand"; "strength_reduce";
                   "scalar_replace"; "prefetch"; "prefer"; "width";
                 ]))
          fields
      in
      let* () =
        match unknown with
        | Some (k, _) -> Error (Printf.sprintf "unknown candidate field %S" k)
        | None -> Ok ()
      in
      let* jam =
        match Json.member "jam" j with
        | None -> Ok Pipeline.default.Pipeline.jam
        | Some (Json.List l) ->
            List.fold_left
              (fun acc x ->
                let* acc = acc in
                let* vf = var_factor "jam entry" x in
                Ok (vf :: acc))
              (Ok []) l
            |> Result.map List.rev
        | Some _ -> Error "jam must be an array of [\"var\",factor] pairs"
      in
      let* inner_unroll =
        match Json.member "unroll" j with
        | None -> Ok Pipeline.default.Pipeline.inner_unroll
        | Some x -> Result.map Option.some (var_factor "unroll" x)
      in
      let* expand_reduction =
        match Json.member "expand" j with
        | None -> Ok Pipeline.default.Pipeline.expand_reduction
        | Some x -> Result.map Option.some (as_int "expand" x)
      in
      let bool_field name default =
        match Json.member name j with
        | None -> Ok default
        | Some (Json.Bool b) -> Ok b
        | Some _ -> Error (name ^ " must be a boolean")
      in
      let* strength_reduce =
        bool_field "strength_reduce" Pipeline.default.Pipeline.strength_reduce
      in
      let* scalar_replace =
        bool_field "scalar_replace" Pipeline.default.Pipeline.scalar_replace
      in
      let* prefetch =
        match Json.member "prefetch" j with
        | None -> Ok None
        | Some Json.Null -> Ok None
        | Some (Json.Obj _ as p) ->
            let* d =
              match Json.member "distance" p with
              | Some x -> as_int "prefetch.distance" x
              | None -> Error "prefetch needs a distance"
            in
            let* stores =
              match Json.member "stores" p with
              | None -> Ok true
              | Some (Json.Bool b) -> Ok b
              | Some _ -> Error "prefetch.stores must be a boolean"
            in
            if d <= 0 then Ok None
            else Ok (Some { Prefetch.pf_distance = d; pf_stores = stores })
        | Some _ -> Error "prefetch must be an object or null"
      in
      let* prefer =
        match Json.member "prefer" j with
        | None -> Ok Emit.default_options.Emit.prefer
        | Some (Json.String "auto") -> Ok Plan.Prefer_auto
        | Some (Json.String "vdup") -> Ok Plan.Prefer_vdup
        | Some (Json.String "shuf") -> Ok Plan.Prefer_shuf
        | Some _ -> Error "prefer must be \"auto\", \"vdup\" or \"shuf\""
      in
      let* max_width =
        match Json.member "width" j with
        | None -> Ok Emit.default_options.Emit.max_width
        | Some (Json.Int 64) -> Ok (Some Insn.W64)
        | Some (Json.Int 128) -> Ok (Some Insn.W128)
        | Some (Json.Int 256) -> Ok (Some Insn.W256)
        | Some _ -> Error "width must be 64, 128 or 256"
      in
      Ok
        {
          Tuner.cand_config =
            {
              Pipeline.jam;
              inner_unroll;
              expand_reduction;
              strength_reduce;
              scalar_replace;
              prefetch;
            };
          cand_opts = { Emit.prefer; max_width };
        }
  | _ -> Error "candidate must be an object"

let candidate_to_json (c : Tuner.candidate) : Json.t =
  let cfg = c.Tuner.cand_config in
  let opts = c.Tuner.cand_opts in
  Json.Obj
    (List.concat
       [
         (match cfg.Pipeline.jam with
         | [] -> []
         | jam ->
             [
               ( "jam",
                 Json.List
                   (List.map
                      (fun (v, f) ->
                        Json.List [ Json.String v; Json.Int f ])
                      jam) );
             ]);
         (match cfg.Pipeline.inner_unroll with
         | None -> []
         | Some (v, f) ->
             [ ("unroll", Json.List [ Json.String v; Json.Int f ]) ]);
         (match cfg.Pipeline.expand_reduction with
         | None -> []
         | Some e -> [ ("expand", Json.Int e) ]);
         [
           ("strength_reduce", Json.Bool cfg.Pipeline.strength_reduce);
           ("scalar_replace", Json.Bool cfg.Pipeline.scalar_replace);
         ];
         (match cfg.Pipeline.prefetch with
         | None -> []
         | Some p ->
             [
               ( "prefetch",
                 Json.Obj
                   [
                     ("distance", Json.Int p.Prefetch.pf_distance);
                     ("stores", Json.Bool p.Prefetch.pf_stores);
                   ] );
             ]);
         [
           ( "prefer",
             Json.String
               (match opts.Emit.prefer with
               | Plan.Prefer_auto -> "auto"
               | Plan.Prefer_vdup -> "vdup"
               | Plan.Prefer_shuf -> "shuf") );
         ];
         (match opts.Emit.max_width with
         | None -> []
         | Some Insn.W64 -> [ ("width", Json.Int 64) ]
         | Some Insn.W128 -> [ ("width", Json.Int 128) ]
         | Some Insn.W256 -> [ ("width", Json.Int 256) ]);
       ])

(* --- request decoding ---------------------------------------------------- *)

let bad detail = { e_code = e_bad_request; e_detail = detail }

let decode_arch ~op (j : Json.t) : (Arch.t, error) Stdlib.result =
  match Json.member "arch" j with
  | Some (Json.String s) -> (
      match Arch.by_name_result s with
      | Ok a -> Ok a
      | Error msg -> Error (bad msg))
  | _ -> Error (bad (op ^ " needs an \"arch\" string"))

(* The precision wire field; absent or null means f64, keeping every
   pre-precision client bit-compatible. *)
let decode_precision (j : Json.t) : (Etype.t, error) Stdlib.result =
  match Json.member "precision" j with
  | None | Some Json.Null -> Ok Etype.F64
  | Some (Json.String s) -> (
      match Etype.of_name s with
      | Some et -> Ok et
      | None ->
          Error
            (bad
               (Printf.sprintf "unknown precision %S (valid: f32, f64)" s)))
  | Some _ -> Error (bad "precision must be \"f32\" or \"f64\"")

let decode_deadline_ms (j : Json.t) : (float option, error) Stdlib.result =
  match Json.member "deadline_ms" j with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int i) when i > 0 -> Ok (Some (float_of_int i))
  | Some (Json.Float f) when f > 0. -> Ok (Some f)
  | Some _ -> Error (bad "deadline_ms must be a positive number")

(* m/n/k of a blocked request: positive integers, defaulting to the
   reference square size. *)
let decode_dim (j : Json.t) (name : string) : (int, error) Stdlib.result =
  match Json.member name j with
  | None | Some Json.Null -> Ok 1024
  | Some (Json.Int i) when i > 0 -> Ok i
  | Some _ ->
      Error (bad (Printf.sprintf "%s must be a positive integer" name))

let request_of_json (j : Json.t) : (request, error) Stdlib.result =
  match j with
  | Json.Obj _ -> (
      let id = Option.value ~default:Json.Null (Json.member "id" j) in
      let with_id r = Result.map (fun op -> { rq_id = id; rq_op = op }) r in
      match Json.member "op" j with
      | Some (Json.String "stats") -> with_id (Ok Op_stats)
      | Some (Json.String "ping") -> with_id (Ok Op_ping)
      | Some (Json.String "shutdown") -> with_id (Ok Op_shutdown)
      | Some (Json.String "tune") ->
          with_id
            (let* kernel =
               match Json.member "kernel" j with
               | Some (Json.String s) -> (
                   match Kernels.name_of_string s with
                   | Some k -> Ok k
                   | None -> Error (bad (Printf.sprintf "unknown kernel %S" s)))
               | _ -> Error (bad "tune needs a \"kernel\" string")
             in
             let* arch = decode_arch ~op:"tune" j in
             let* et = decode_precision j in
             let* space =
               match Json.member "space" j with
               | None | Some Json.Null -> Ok None
               | Some (Json.List []) -> Error (bad "space must not be empty")
               | Some (Json.List cs) ->
                   List.fold_left
                     (fun acc c ->
                       let* acc = acc in
                       match candidate_of_json c with
                       | Ok cand -> Ok (cand :: acc)
                       | Error m -> Error (bad ("bad space candidate: " ^ m)))
                     (Ok []) cs
                   |> Result.map (fun l -> Some (List.rev l))
               | Some _ -> Error (bad "space must be an array of candidates")
             in
             let* deadline_ms = decode_deadline_ms j in
             Ok
               (Op_tune
                  {
                    tq_kernel = kernel;
                    tq_arch = arch;
                    tq_et = et;
                    tq_space = space;
                    tq_deadline_ms = deadline_ms;
                  }))
      | Some (Json.String "blocked") ->
          with_id
            (let* arch = decode_arch ~op:"blocked" j in
             let* et = decode_precision j in
             let* m = decode_dim j "m" in
             let* n = decode_dim j "n" in
             let* k = decode_dim j "k" in
             let* deadline_ms = decode_deadline_ms j in
             Ok
               (Op_blocked
                  {
                    bq_arch = arch;
                    bq_et = et;
                    bq_m = m;
                    bq_n = n;
                    bq_k = k;
                    bq_deadline_ms = deadline_ms;
                  }))
      | Some (Json.String op) ->
          Error (bad (Printf.sprintf "unknown op %S" op))
      | Some _ -> Error (bad "op must be a string")
      | None -> Error (bad "missing \"op\""))
  | _ -> Error (bad "request must be a JSON object")

let parse_request (line : string) :
    (request, Json.t * error) Stdlib.result =
  match Json.parse line with
  | Error msg -> Error (Json.Null, bad msg)
  | Ok j -> (
      let id = Option.value ~default:Json.Null (Json.member "id" j) in
      match request_of_json j with
      | Ok r -> Ok r
      | Error e -> Error (id, e))

let request_to_json (r : request) : Json.t =
  let base = [ ("id", r.rq_id) ] in
  match r.rq_op with
  | Op_stats -> Json.Obj (base @ [ ("op", Json.String "stats") ])
  | Op_ping -> Json.Obj (base @ [ ("op", Json.String "ping") ])
  | Op_shutdown -> Json.Obj (base @ [ ("op", Json.String "shutdown") ])
  | Op_tune t ->
      Json.Obj
        (base
        @ [
            ("op", Json.String "tune");
            ("kernel", Json.String (Kernels.name_to_string t.tq_kernel));
            ("arch", Json.String t.tq_arch.Arch.name);
          ]
        @ (match t.tq_et with
          | Etype.F64 -> []
          | et -> [ ("precision", Json.String (Etype.name et)) ])
        @ (match t.tq_space with
          | None -> []
          | Some cs ->
              [ ("space", Json.List (List.map candidate_to_json cs)) ])
        @
        match t.tq_deadline_ms with
        | None -> []
        | Some ms -> [ ("deadline_ms", Json.Float ms) ])
  | Op_blocked b ->
      Json.Obj
        (base
        @ [
            ("op", Json.String "blocked");
            ("arch", Json.String b.bq_arch.Arch.name);
          ]
        @ (match b.bq_et with
          | Etype.F64 -> []
          | et -> [ ("precision", Json.String (Etype.name et)) ])
        @ [
            ("m", Json.Int b.bq_m);
            ("n", Json.Int b.bq_n);
            ("k", Json.Int b.bq_k);
          ]
        @
        match b.bq_deadline_ms with
        | None -> []
        | Some ms -> [ ("deadline_ms", Json.Float ms) ])

(* --- response encoding --------------------------------------------------- *)

let provenance_to_json (p : provenance) : Json.t =
  Json.Obj
    [
      ("tier", Json.String (tier_to_string p.pv_tier));
      ("config", Json.String p.pv_config);
      ("mflops", Json.Float p.pv_mflops);
      ("visited", Json.Int p.pv_visited);
      ("discarded", Json.Int p.pv_discarded);
      ("fell_back", Json.Bool p.pv_fell_back);
      ("deadline_expired", Json.Bool p.pv_deadline_expired);
      ("breaker_open", Json.Bool p.pv_breaker_open);
      ("tuning_ms", Json.Float p.pv_tuning_ms);
    ]

let response_to_json (r : response) : Json.t =
  match r.rs_result with
  | Ok (R_kernel k) ->
      Json.Obj
        [
          ("id", r.rs_id);
          ("ok", Json.Bool true);
          ("kernel", Json.String k.rk_kernel);
          ("arch", Json.String k.rk_arch);
          ("assembly", Json.String k.rk_assembly);
          ("degraded", Json.Bool k.rk_degraded);
          ("provenance", provenance_to_json k.rk_provenance);
        ]
  | Ok (R_blocked b) ->
      Json.Obj
        [
          ("id", r.rs_id);
          ("ok", Json.Bool true);
          ("arch", Json.String b.rb_arch);
          ( "blocking",
            Json.Obj
              [
                ("mc", Json.Int b.rb_mc);
                ("kc", Json.Int b.rb_kc);
                ("nc", Json.Int b.rb_nc);
              ] );
          ("mr", Json.Int b.rb_mr);
          ("nr", Json.Int b.rb_nr);
          ("micro_config", Json.String b.rb_micro_config);
          ( "assembly",
            Json.Obj
              [
                ("micro", Json.String b.rb_micro_assembly);
                ("pack_a", Json.String b.rb_pack_a_assembly);
                ("pack_b", Json.String b.rb_pack_b_assembly);
              ] );
          ( "mflops",
            Json.Obj
              [
                ("blocked", Json.Float b.rb_blocked_mflops);
                ("streamed", Json.Float b.rb_streamed_mflops);
                ( "speedup",
                  if b.rb_streamed_mflops > 0. then
                    Json.Float (b.rb_blocked_mflops /. b.rb_streamed_mflops)
                  else Json.Null );
              ] );
          ("tier", Json.String (tier_to_string b.rb_tier));
          ("degraded", Json.Bool b.rb_degraded);
          ("tuning_ms", Json.Float b.rb_tuning_ms);
        ]
  | Ok (R_stats s) ->
      Json.Obj [ ("id", r.rs_id); ("ok", Json.Bool true); ("stats", s) ]
  | Ok R_pong ->
      Json.Obj
        [ ("id", r.rs_id); ("ok", Json.Bool true); ("pong", Json.Bool true) ]
  | Ok R_shutting_down ->
      Json.Obj
        [
          ("id", r.rs_id);
          ("ok", Json.Bool true);
          ("shutting_down", Json.Bool true);
        ]
  | Error e ->
      Json.Obj
        [
          ("id", r.rs_id);
          ("ok", Json.Bool false);
          ( "error",
            Json.Obj
              [
                ("code", Json.String e.e_code);
                ("detail", Json.String e.e_detail);
              ] );
        ]

let response_line (r : response) : string = Json.to_string (response_to_json r)
