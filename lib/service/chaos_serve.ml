(* Deterministic seeded chaos driver over scripted serve sessions.
   See chaos_serve.mli. *)

module A = Augem
module Tuner = A.Tuner
module Cache = A.Tuning_cache
module Arch = A.Machine.Arch
module Kernels = A.Ir.Kernels
module Json = A.Json
module Faultpoint = Augem_resilience.Faultpoint

type outcome = {
  co_sessions : int;
  co_schedules : int;
  co_points : string list;
  co_requests : int;
  co_ok : int;
  co_err : int;
  co_degraded : int;
  co_coalesced : int;
  co_worker_deaths : int;
  co_injected : int;
  co_violations : string list;
}

(* --- deterministic PRNG (splitmix-style over int) ------------------------ *)

type prng = { mutable s : int }

(* 48-bit linear congruential generator (Lehmer/Java constants): small
   enough for 63-bit ints, deterministic across platforms *)
let prng_next (g : prng) : int =
  g.s <- ((g.s * 25214903917) + 11) land 0xFFFFFFFFFFFF;
  g.s lsr 16

let prng_below (g : prng) (n : int) : int = prng_next g mod max 1 n

(* --- the fault-point catalog --------------------------------------------- *)

(* Every point the service registers, with the actions that are
   meaningful there.  [Corrupt] only belongs on data-plane points
   ([Faultpoint.corrupting] call sites); [Kill] only where a worker
   domain (or a path that must survive a crashed callee) executes. *)
let catalog : (string * Faultpoint.action list) list =
  [
    ("registry.lookup", [ Faultpoint.Fail; Faultpoint.Delay_ms 1. ]);
    ("registry.compute", [ Faultpoint.Fail; Faultpoint.Delay_ms 1. ]);
    ("cache.read", [ Faultpoint.Fail; Faultpoint.Delay_ms 1. ]);
    ("cache.read.bytes", [ Faultpoint.Corrupt 7; Faultpoint.Fail ]);
    ("cache.store.tmp_created", [ Faultpoint.Fail ]);
    ("cache.store.payload", [ Faultpoint.Corrupt 11; Faultpoint.Fail ]);
    ("cache.store.written", [ Faultpoint.Fail ]);
    ("cache.store.synced", [ Faultpoint.Fail ]);
    ("cache.store.renamed", [ Faultpoint.Fail ]);
    ("cache.recover.scan", [ Faultpoint.Fail ]);
    ("cache.recover.entry", [ Faultpoint.Fail ]);
    ("taskq.worker", [ Faultpoint.Kill; Faultpoint.Fail; Faultpoint.Delay_ms 1. ]);
    ("scheduler.job", [ Faultpoint.Kill; Faultpoint.Fail; Faultpoint.Delay_ms 1. ]);
    ("server.handle", [ Faultpoint.Fail; Faultpoint.Delay_ms 1. ]);
  ]

let schedule_key (ts : Faultpoint.trigger list) : string =
  String.concat ";"
    (List.sort compare (List.map Faultpoint.trigger_to_string ts))

(* Session [i]'s primary trigger walks the full (point x action x hit)
   grid, so any two sessions inject provably distinct schedules and the
   whole catalog is covered after [List.length catalog] sessions. *)
let primary_trigger (i : int) : Faultpoint.trigger =
  let n = List.length catalog in
  let point, actions = List.nth catalog (i mod n) in
  let k = List.length actions in
  let action = List.nth actions (i / n mod k) in
  { Faultpoint.tr_point = point; tr_hit = 1 + (i / (n * k) mod 3); tr_action = action }

let secondary_triggers (g : prng) : Faultpoint.trigger list =
  List.init (prng_below g 2) (fun _ ->
      let point, actions = List.nth catalog (prng_below g (List.length catalog)) in
      let action = List.nth actions (prng_below g (List.length actions)) in
      { Faultpoint.tr_point = point; tr_hit = 1 + prng_below g 2; tr_action = action })

(* --- scratch cache directories ------------------------------------------- *)

let rec rm_rf (path : string) : unit =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      (try Unix.rmdir path with _ -> ())
  | _ -> ( try Sys.remove path with _ -> ())
  | exception Unix.Unix_error _ -> ()

let seed_debris (dir : string) : unit =
  (* give the startup recovery scan something real to quarantine: an
     orphaned temp file and a torn entry under a servable name *)
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Out_channel.with_open_bin
    (Filename.concat dir "augem-tune-0deadbeef.tmp")
    (fun oc -> Out_channel.output_string oc "torn half-write");
  Out_channel.with_open_bin
    (Filename.concat dir "augem-tune-0badc0ffee.cache")
    (fun oc -> Out_channel.output_string oc "AUGEMTUNE1\ngarbage")

(* --- one scripted session ------------------------------------------------ *)

type session_stats = {
  mutable s_requests : int;
  mutable s_ok : int;
  mutable s_err : int;
  mutable s_degraded : int;
  s_violations : string Queue.t;
}

let jbool j name = match Json.member name j with Some (Json.Bool b) -> Some b | _ -> None

let known_codes =
  [ Proto.e_overload; Proto.e_bad_request; Proto.e_shutting_down; Proto.e_internal ]

(* Structural invariant checks on one response line. *)
let check_response (st : session_stats) (what : string) (line : string) :
    unit =
  let viol fmt =
    Printf.ksprintf (fun s -> Queue.add (what ^ ": " ^ s) st.s_violations) fmt
  in
  match Json.parse line with
  | Error e -> viol "unparsable response (%s): %s" e line
  | Ok j -> (
      (if Json.member "id" j = None then viol "response without id: %s" line);
      match jbool j "ok" with
      | None -> viol "response without ok: %s" line
      | Some true -> (
          st.s_ok <- st.s_ok + 1;
          (match jbool j "degraded" with
          | Some true -> st.s_degraded <- st.s_degraded + 1
          | _ -> ());
          (* "no corrupted entry served": a served kernel always carries
             non-trivial assembly — corruption must surface as a cache
             miss (checksum) or an error, never as served garbage *)
          match Json.member "assembly" j with
          | Some (Json.String s) ->
              if String.length s < 16 then
                viol "served assembly implausibly short: %S" s
          | Some _ -> viol "non-string assembly: %s" line
          | None -> () (* ping / stats / shutdown replies *))
      | Some false -> (
          st.s_err <- st.s_err + 1;
          match Json.member "error" j with
          | None -> viol "ok:false without error: %s" line
          | Some e -> (
              match Json.member "code" e with
              | Some (Json.String c) when List.mem c known_codes -> ()
              | Some (Json.String c) -> viol "unknown error code %S" c
              | _ -> viol "error without code: %s" line)))

let session_deadline_s = 60.

let run_session ~(index : int) ~(g : prng) ~(log : string -> unit)
    (st : session_stats) :
    Faultpoint.trigger list * int (* coalesced *) * int (* injected *)
    * int (* deaths *) =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "augem-chaos-%d-%d" (Unix.getpid ()) index)
  in
  rm_rf dir;
  seed_debris dir;
  let schedule = primary_trigger index :: secondary_triggers g in
  Faultpoint.reset_counters ();
  Faultpoint.arm schedule;
  log
    (Printf.sprintf "session %d: %s" index
       (String.concat " + " (List.map Faultpoint.trigger_to_string schedule)));
  let config =
    {
      Server.cfg_workers = 2;
      cfg_queue = 4;
      cfg_lru = 4;
      cfg_cache_dir = Some dir;
      cfg_deadline_ms = None;
      cfg_tune_jobs = 1;
      cfg_breaker_threshold = 2;
      cfg_breaker_cooldown_ms = 5.;
      cfg_restart_budget = 4;
      cfg_recover = true;
    }
  in
  let t0 = Unix.gettimeofday () in
  let server = Server.create ~config () in
  let viol fmt =
    Printf.ksprintf
      (fun s -> Queue.add (Printf.sprintf "session %d: %s" index s) st.s_violations)
      fmt
  in
  (* two client threads race the same keys (single-flight + breaker
     paths), then the main thread takes the stats snapshot *)
  let keys = [| (Kernels.Axpy, "sandybridge"); (Kernels.Dot, "piledriver") |] in
  let respond_mutex = Mutex.create () in
  let responses = ref [] in
  let tunes_sent = ref 0 in
  let client which =
    for r = 0 to 2 do
      let kernel, arch_name = keys.((index + r) mod Array.length keys) in
      let line =
        Printf.sprintf
          {|{"id":"%d-%d-%d","op":"tune","kernel":"%s","arch":"%s"}|}
          index which r
          (Kernels.name_to_string kernel)
          arch_name
      in
      let resp = Server.handle_line server line in
      Mutex.protect respond_mutex (fun () ->
          incr tunes_sent;
          responses := (Printf.sprintf "tune %d-%d-%d" index which r, resp) :: !responses)
    done
  in
  let done_count = ref 0 in
  let spawn f =
    ignore
      (Thread.create
         (fun () ->
           (try f () with _ -> ());
           Mutex.protect respond_mutex (fun () -> incr done_count))
         ())
  in
  spawn (fun () -> client 0);
  spawn (fun () -> client 1);
  let rec wait_clients () =
    if Mutex.protect respond_mutex (fun () -> !done_count) >= 2 then true
    else if Unix.gettimeofday () -. t0 > session_deadline_s then false
    else begin
      Thread.delay 0.002;
      wait_clients ()
    end
  in
  let finished = wait_clients () in
  if not finished then begin
    (* the one invariant that must never break: nothing hangs.  Leave
       the stuck threads behind (they are unkillable) and report. *)
    viol "session exceeded %.0fs deadline — a request hung" session_deadline_s;
    Faultpoint.disarm ();
    (schedule, 0, Faultpoint.injected_total (), 0)
  end
  else begin
    let ping = Server.handle_line server {|{"id":"ping","op":"ping"}|} in
    let stats_line = Server.handle_line server {|{"id":"stats","op":"stats"}|} in
    Faultpoint.disarm ();
    let injected = Faultpoint.injected_total () in
    List.iter
      (fun (what, resp) ->
        st.s_requests <- st.s_requests + 1;
        check_response st what resp)
      ((Printf.sprintf "session %d ping" index, ping)
      :: (Printf.sprintf "session %d stats" index, stats_line)
      :: List.rev_map (fun (w, r) -> ("session " ^ w, r)) !responses);
    (* --- metrics arithmetic, against the server's own counters ------- *)
    let m = Server.metrics server in
    let ok_tunes =
      List.length
        (List.filter
           (fun (_, r) ->
             match Json.parse r with
             | Ok j -> jbool j "ok" = Some true
             | Error _ -> false)
           !responses)
    in
    let tiers_sum =
      Metrics.get m "tiers.memory" + Metrics.get m "tiers.disk"
      + Metrics.get m "tiers.tuned"
      + Metrics.get m "tiers.coalesced"
    in
    let breaker_degraded = Metrics.get m "degraded.breaker_open" in
    if tiers_sum + breaker_degraded <> ok_tunes then
      viol "tier accounting: tiers=%d + breaker_degraded=%d <> ok tune replies=%d"
        tiers_sum breaker_degraded ok_tunes;
    (* a ["server.handle"] injection fires before the op is counted, so
       counted <= sent; but every sent request must get a response *)
    if Metrics.get m "requests.tune" > !tunes_sent then
      viol "requests.tune=%d but only %d tune requests were sent"
        (Metrics.get m "requests.tune") !tunes_sent;
    if List.length !responses <> !tunes_sent then
      viol "%d tune requests but %d responses" !tunes_sent
        (List.length !responses);
    let sched = Server.scheduler server in
    let deaths = Scheduler.worker_deaths sched in
    let restarts = Scheduler.worker_restarts sched in
    let live = Scheduler.live_workers sched in
    if restarts > config.cfg_restart_budget then
      viol "worker restarts %d exceed budget %d" restarts config.cfg_restart_budget;
    if live <> config.cfg_workers - deaths + restarts then
      viol "live workers %d <> %d - %d + %d" live config.cfg_workers deaths restarts;
    if deaths <= config.cfg_restart_budget && restarts <> deaths then
      viol "deaths=%d within budget but only %d respawns" deaths restarts;
    (match Registry.breaker (Server.registry server) with
    | Some b ->
        if Augem_resilience.Breaker.rejected_total b <> breaker_degraded then
          viol "breaker rejected %d times but %d breaker-degraded replies"
            (Augem_resilience.Breaker.rejected_total b)
            breaker_degraded
    | None -> viol "server built without a breaker despite threshold > 0");
    (* the stats snapshot itself must expose the resilience section *)
    (match Json.parse stats_line with
    | Ok j -> (
        match Json.member "stats" j with
        | Some stats ->
            if Json.member "resilience" stats = None then
              viol "stats snapshot lacks the resilience section";
            (match Json.member "uptime_ms" stats with
            | Some (Json.Float f) when f >= 0. -> ()
            | Some (Json.Int n) when n >= 0 -> ()
            | _ -> viol "stats snapshot lacks a sane uptime_ms")
        | None -> viol "stats reply without stats body")
    | Error _ -> ());
    (* wall-clock invariant: the whole scripted session stays bounded *)
    let wall = Unix.gettimeofday () -. t0 in
    if wall > session_deadline_s then
      viol "session took %.1fs (deadline %.0fs)" wall session_deadline_s;
    let coalesced = Registry.coalesced_total (Server.registry server) in
    Server.drain server;
    rm_rf dir;
    (schedule, coalesced, injected, deaths)
  end

let run ?(sessions = 40) ?(log = fun _ -> ()) ~(seed : int) () : outcome =
  let g = { s = (seed * 0x9E3779B9) lxor 0x5DEECE66D } in
  let st =
    { s_requests = 0; s_ok = 0; s_err = 0; s_degraded = 0; s_violations = Queue.create () }
  in
  let schedules = Hashtbl.create 64 in
  let points = Hashtbl.create 16 in
  let coalesced = ref 0 in
  let deaths = ref 0 in
  let injected = ref 0 in
  for i = 0 to sessions - 1 do
    let schedule, co, inj, dd = run_session ~index:i ~g ~log st in
    Hashtbl.replace schedules (schedule_key schedule) ();
    List.iter (fun tr -> Hashtbl.replace points tr.Faultpoint.tr_point ()) schedule;
    coalesced := !coalesced + co;
    injected := !injected + inj;
    deaths := !deaths + dd
  done;
  Faultpoint.disarm ();
  Faultpoint.reset_counters ();
  {
    co_sessions = sessions;
    co_schedules = Hashtbl.length schedules;
    co_points = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) points []);
    co_requests = st.s_requests;
    co_ok = st.s_ok;
    co_err = st.s_err;
    co_degraded = st.s_degraded;
    co_coalesced = !coalesced;
    co_worker_deaths = !deaths;
    co_injected = !injected;
    co_violations = List.of_seq (Queue.to_seq st.s_violations);
  }

let report (o : outcome) : string =
  let b = Buffer.create 256 in
  Printf.bprintf b
    "chaos-serve: %d sessions, %d distinct schedules over %d fault points\n"
    o.co_sessions o.co_schedules (List.length o.co_points);
  Printf.bprintf b "  points: %s\n" (String.concat ", " o.co_points);
  Printf.bprintf b
    "  %d requests: %d ok (%d degraded), %d structured errors, %d coalesced, %d faults injected\n"
    o.co_requests o.co_ok o.co_degraded o.co_err o.co_coalesced o.co_injected;
  (match o.co_violations with
  | [] -> Buffer.add_string b "  invariants: all held\n"
  | vs ->
      Printf.bprintf b "  INVARIANT VIOLATIONS (%d):\n" (List.length vs);
      List.iter (fun v -> Printf.bprintf b "    - %s\n" v) vs);
  Buffer.contents b
