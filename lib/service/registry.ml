(* Bounded LRU over the persistent tuning cache, with single-flight
   deduplication.  See registry.mli. *)

module A = Augem
module Tuner = A.Tuner
module Cache = A.Tuning_cache
module Arch = A.Machine.Arch
module Kernels = A.Ir.Kernels
module Etype = A.Machine.Etype
module Faultpoint = Augem_resilience.Faultpoint
module Breaker = Augem_resilience.Breaker

let fp_lookup = "registry.lookup"
let fp_compute = "registry.compute"
let () = List.iter Faultpoint.register [ fp_lookup; fp_compute ]

type computed = { c_result : Tuner.result; c_deadline_expired : bool }

type outcome = {
  o_result : Tuner.result;
  o_tier : Proto.tier;
  o_degraded : bool;
  o_deadline_expired : bool;
  o_tuning_ms : float;
}

type slot = { mutable value : Tuner.result; mutable tick : int }

type flight = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable f_state : (outcome, exn) Stdlib.result option;
}

type t = {
  m : Mutex.t;
  changed : Condition.t;  (* signalled when coalesced_total moves *)
  lru : (string, slot) Hashtbl.t;
  inflight : (string, flight) Hashtbl.t;
  capacity : int;
  cache_dir : string option;
  on_event : Tuner.cache_observer;
  breaker : Breaker.t option;
  mutable tick : int;
  mutable coalesced : int;
}

let create ?(lru_capacity = 64) ?cache_dir ?breaker
    ?(on_event = Tuner.notify_cache_event) () : t =
  {
    m = Mutex.create ();
    changed = Condition.create ();
    lru = Hashtbl.create 32;
    inflight = Hashtbl.create 8;
    capacity = max 1 lru_capacity;
    cache_dir;
    on_event;
    breaker;
    tick = 0;
    coalesced = 0;
  }

let breaker (t : t) : Breaker.t option = t.breaker

(* the precision rides in the kernel-name component of the content
   address (s-prefixed for f32, bare for f64), so f64 addresses are
   untouched by the precision axis *)
let fp_of_et = function
  | Etype.F32 -> Some A.Ir.Ast.Float
  | Etype.F64 -> None

let key_of ?(et = Etype.F64) ~(arch : Arch.t) ~(kernel : Kernels.name)
    ~(space : Tuner.candidate list) () : string * string =
  let fingerprint = Tuner.space_fingerprint space in
  let kernel_s = Kernels.name_to_string ?fp:(fp_of_et et) kernel in
  let keydesc =
    Cache.keydesc ~version:Tuner.tuner_version ~arch:arch.Arch.name
      ~kernel:kernel_s ~fingerprint
  in
  let digest =
    Cache.digest ~version:Tuner.tuner_version ~arch:arch.Arch.name
      ~kernel:kernel_s ~fingerprint
  in
  (keydesc, digest)

let digest_of ?et ~arch ~kernel ~space () : string =
  snd (key_of ?et ~arch ~kernel ~space ())

(* caller holds t.m *)
let lru_touch (t : t) (s : slot) : unit =
  t.tick <- t.tick + 1;
  s.tick <- t.tick

(* caller holds t.m.  Capacity is small (a server config knob), so a
   scan-for-minimum eviction beats the bookkeeping of a linked list. *)
let lru_insert (t : t) (digest : string) (v : Tuner.result) : unit =
  (match Hashtbl.find_opt t.lru digest with
  | Some s ->
      s.value <- v;
      lru_touch t s
  | None ->
      t.tick <- t.tick + 1;
      Hashtbl.replace t.lru digest { value = v; tick = t.tick });
  if Hashtbl.length t.lru > t.capacity then begin
    let victim =
      Hashtbl.fold
        (fun k (s : slot) acc ->
          match acc with
          | Some (_, best) when best <= s.tick -> acc
          | _ -> Some (k, s.tick))
        t.lru None
    in
    match victim with
    | Some (k, _) -> Hashtbl.remove t.lru k
    | None -> ()
  end

let lru_size (t : t) : int =
  Mutex.protect t.m (fun () -> Hashtbl.length t.lru)

let lru_capacity (t : t) : int = t.capacity

let coalesced_total (t : t) : int = Mutex.protect t.m (fun () -> t.coalesced)

let wait_coalesced (t : t) (n : int) : unit =
  Mutex.lock t.m;
  while t.coalesced < n do
    Condition.wait t.changed t.m
  done;
  Mutex.unlock t.m

let find_or_compute ?(et = Etype.F64) (t : t) ~(arch : Arch.t)
    ~(kernel : Kernels.name) ~(space : Tuner.candidate list)
    ~(compute : unit -> computed) : outcome =
  let arch_s = arch.Arch.name in
  let kernel_s = Kernels.name_to_string ?fp:(fp_of_et et) kernel in
  let emit ev = t.on_event ~arch:arch_s ~kernel:kernel_s ev in
  let keydesc, digest = key_of ~et ~arch ~kernel ~space () in
  Faultpoint.hit fp_lookup;
  Mutex.lock t.m;
  match Hashtbl.find_opt t.lru digest with
  | Some slot ->
      lru_touch t slot;
      let v = slot.value in
      Mutex.unlock t.m;
      emit Tuner.Ev_memory_hit;
      { o_result = v; o_tier = Proto.T_memory; o_degraded = false;
        o_deadline_expired = false; o_tuning_ms = 0. }
  | None -> (
      match Hashtbl.find_opt t.inflight digest with
      | Some fl ->
          (* single-flight: attach to the running sweep *)
          t.coalesced <- t.coalesced + 1;
          Condition.broadcast t.changed;
          Mutex.unlock t.m;
          Mutex.lock fl.fm;
          let rec wait () =
            match fl.f_state with
            | Some r -> r
            | None ->
                Condition.wait fl.fc fl.fm;
                wait ()
          in
          let r = wait () in
          Mutex.unlock fl.fm;
          (match r with
          | Ok o -> { o with o_tier = Proto.T_coalesced }
          | Error e -> raise e)
      | None ->
          (* would-be leader: a key whose circuit is open degrades
             immediately instead of starting yet another doomed sweep.
             (Coalescing onto an existing flight — e.g. a half-open
             probe — is handled above and stays allowed: those waiters
             share the probe's verdict.) *)
          (match t.breaker with
          | Some b -> (
              match Breaker.admit b digest with
              | Breaker.Reject ->
                  Mutex.unlock t.m;
                  raise (Breaker.Open_circuit keydesc)
              | Breaker.Allow | Breaker.Probe -> ())
          | None -> ());
          let fl =
            { fm = Mutex.create (); fc = Condition.create (); f_state = None }
          in
          Hashtbl.replace t.inflight digest fl;
          Mutex.unlock t.m;
          let finish (r : (outcome, exn) Stdlib.result) : outcome =
            Mutex.lock t.m;
            Hashtbl.remove t.inflight digest;
            (match r with
            | Ok o when not o.o_degraded -> lru_insert t digest o.o_result
            | _ -> ());
            Mutex.unlock t.m;
            (* feed the breaker: a clean result closes the key, a
               failure or a fell-back sweep counts against it; deadline
               expiry is queue latency, not the key's fault *)
            (match t.breaker with
            | Some b -> (
                match r with
                | Ok o when not o.o_degraded -> Breaker.success b digest
                | Ok o when o.o_deadline_expired -> ()
                | Ok _ | Error _ -> Breaker.failure b digest)
            | None -> ());
            Mutex.lock fl.fm;
            fl.f_state <- Some r;
            Condition.broadcast fl.fc;
            Mutex.unlock fl.fm;
            match r with Ok o -> o | Error e -> raise e
          in
          let disk =
            match t.cache_dir with
            | Some dir ->
                Some
                  (Cache.load ~dir ~arch:arch_s ~kernel:kernel_s ~keydesc
                     ~digest)
            | None -> None
          in
          (match disk with
          | Some (Cache.Hit (r : Tuner.result)) when not r.Tuner.fell_back ->
              emit Tuner.Ev_disk_hit;
              finish
                (Ok
                   {
                     o_result = r;
                     o_tier = Proto.T_disk;
                     o_degraded = false;
                     o_deadline_expired = false;
                     o_tuning_ms = 0.;
                   })
          | _ ->
              (match disk with
              | Some (Cache.Hit _) | Some Cache.Miss ->
                  (* a persisted fallback is stale, same as a miss *)
                  emit Tuner.Ev_disk_miss
              | Some (Cache.Corrupt d) -> emit (Tuner.Ev_disk_corrupt d)
              | None -> ());
              let t0 = Unix.gettimeofday () in
              match Faultpoint.wrap fp_compute compute with
              | exception e -> finish (Error e)
              | { c_result; c_deadline_expired } ->
                  let tuning_ms = (Unix.gettimeofday () -. t0) *. 1000. in
                  if not c_deadline_expired then emit Tuner.Ev_swept;
                  let degraded =
                    c_deadline_expired || c_result.Tuner.fell_back
                  in
                  (if (not degraded) && t.cache_dir <> None then
                     match t.cache_dir with
                     | Some dir -> (
                         match
                           Cache.store ~dir ~arch:arch_s ~kernel:kernel_s
                             ~keydesc ~digest c_result
                         with
                         | None -> emit Tuner.Ev_store
                         | Some d -> emit (Tuner.Ev_store_error d)
                         | exception e ->
                             (* a store crash (injected or real) must
                                not fail a request whose sweep
                                succeeded: account it and serve *)
                             emit
                               (Tuner.Ev_store_error
                                  (A.Verify.Diag.make
                                     ~code:A.Verify.Diag.E_cache_corrupt
                                     ~stage:A.Verify.Diag.S_cache
                                     ~kernel:kernel_s ~arch:arch_s ~config:"-"
                                     ~detail:
                                       ("store crashed: "
                                      ^ Printexc.to_string e)
                                     ())))
                     | None -> ());
                  finish
                    (Ok
                       {
                         o_result = c_result;
                         o_tier = Proto.T_tuned;
                         o_degraded = degraded;
                         o_deadline_expired = c_deadline_expired;
                         o_tuning_ms = tuning_ms;
                       })))
