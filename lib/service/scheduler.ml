(* Bounded admission + deadlines over the persistent domain pool.  See
   scheduler.mli. *)

module Taskq = Augem_parallel.Taskq

type 'a outcome = Done of 'a | Expired | Failed of exn

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a outcome option;
}

type t = {
  pool : Taskq.t;
  clock : unit -> float;
  cap : int;
  n_workers : int;
}

let create ?(workers = 1) ?(capacity = 8) ?(now = Unix.gettimeofday) () : t =
  {
    pool = Taskq.create ~workers ~capacity ();
    clock = now;
    cap = capacity;
    n_workers = workers;
  }

let fulfill (fut : 'a future) (o : 'a outcome) : unit =
  Mutex.lock fut.fm;
  fut.state <- Some o;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let submit (t : t) ?deadline (f : unit -> 'a) : 'a future option =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = None } in
  let job () =
    let expired =
      match deadline with Some d -> t.clock () > d | None -> false
    in
    if expired then fulfill fut Expired
    else
      fulfill fut (match f () with v -> Done v | exception e -> Failed e)
  in
  if Taskq.submit t.pool job then Some fut else None

let await (fut : 'a future) : 'a outcome =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.state with
    | Some o -> o
    | None ->
        Condition.wait fut.fc fut.fm;
        wait ()
  in
  let o = wait () in
  Mutex.unlock fut.fm;
  o

let now (t : t) : float = t.clock ()
let pending (t : t) : int = Taskq.pending t.pool
let capacity (t : t) : int = t.cap
let workers (t : t) : int = t.n_workers
let shutdown (t : t) : unit = Taskq.shutdown t.pool
