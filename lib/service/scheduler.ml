(* Bounded admission + deadlines over the supervised persistent domain
   pool.  See scheduler.mli. *)

module Taskq = Augem_parallel.Taskq
module Faultpoint = Augem_resilience.Faultpoint

let fp_job = "scheduler.job"
let () = Faultpoint.register fp_job

type 'a outcome = Done of 'a | Expired | Failed of exn | Lost

type 'a future = {
  fm : Mutex.t;
  fc : Condition.t;
  mutable state : 'a outcome option;
}

type t = {
  pool : Taskq.t;
  clock : unit -> float;
  cap : int;
  n_workers : int;
}

let create ?(workers = 1) ?(capacity = 8) ?(restart_budget = 8)
    ?(now = Unix.gettimeofday) () : t =
  {
    pool = Taskq.create ~workers ~capacity ~restart_budget ();
    clock = now;
    cap = capacity;
    n_workers = workers;
  }

let fulfill (fut : 'a future) (o : 'a outcome) : unit =
  Mutex.lock fut.fm;
  (* first resolution wins: an abandon callback racing a normal
     completion must not flip the outcome under an awaiter *)
  if fut.state = None then begin
    fut.state <- Some o;
    Condition.broadcast fut.fc
  end;
  Mutex.unlock fut.fm

let submit (t : t) ?deadline (f : unit -> 'a) : 'a future option =
  let fut = { fm = Mutex.create (); fc = Condition.create (); state = None } in
  let job () =
    let expired =
      match deadline with Some d -> t.clock () > d | None -> false
    in
    if expired then fulfill fut Expired
    else
      match
        Faultpoint.hit fp_job;
        f ()
      with
      | v -> fulfill fut (Done v)
      | exception (Faultpoint.Worker_kill _ as e) ->
          (* lethal to the worker: let the pool's supervisor see it (it
             fires [on_abandon], resolving this future to [Lost]) *)
          raise e
      | exception e -> fulfill fut (Failed e)
  in
  let on_abandon () = fulfill fut Lost in
  if Taskq.submit t.pool ~on_abandon job then Some fut else None

let await (fut : 'a future) : 'a outcome =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.state with
    | Some o -> o
    | None ->
        Condition.wait fut.fc fut.fm;
        wait ()
  in
  let o = wait () in
  Mutex.unlock fut.fm;
  o

let now (t : t) : float = t.clock ()
let pending (t : t) : int = Taskq.pending t.pool
let capacity (t : t) : int = t.cap
let workers (t : t) : int = t.n_workers
let live_workers (t : t) : int = Taskq.live_workers t.pool
let worker_deaths (t : t) : int = Taskq.deaths t.pool
let worker_restarts (t : t) : int = Taskq.restarts t.pool
let shutdown (t : t) : unit = Taskq.shutdown t.pool
