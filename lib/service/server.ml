(* The compile-and-serve runtime.  See server.mli. *)

module A = Augem
module Tuner = A.Tuner
module Arch = A.Machine.Arch
module Kernels = A.Ir.Kernels
module Att = A.Machine.Att
module Json = A.Json
module Perf = A.Sim.Perf
module Mem_model = A.Sim.Mem_model
module Cache = A.Tuning_cache
module Etype = A.Machine.Etype
module Faultpoint = Augem_resilience.Faultpoint
module Breaker = Augem_resilience.Breaker

let log_src = Logs.Src.create "augem.serve" ~doc:"AUGEM kernel service"

module Log = (val Logs.src_log log_src)

let fp_handle = "server.handle"
let () = Faultpoint.register fp_handle

type config = {
  cfg_workers : int;
  cfg_queue : int;
  cfg_lru : int;
  cfg_cache_dir : string option;
  cfg_deadline_ms : float option;
  cfg_tune_jobs : int;
  cfg_breaker_threshold : int;
  cfg_breaker_cooldown_ms : float;
  cfg_restart_budget : int;
  cfg_recover : bool;
}

let default_config =
  {
    cfg_workers = 1;
    cfg_queue = 8;
    cfg_lru = 64;
    cfg_cache_dir = None;
    cfg_deadline_ms = None;
    cfg_tune_jobs = 1;
    cfg_breaker_threshold = 3;
    cfg_breaker_cooldown_ms = 30_000.;
    cfg_restart_budget = 8;
    cfg_recover = true;
  }

type t = {
  cfg : config;
  now : unit -> float;
  metrics : Metrics.t;
  registry : Registry.t;
  sched : Scheduler.t;
  mutable stop : bool;
  mutable listen_fd : Unix.file_descr option;
  clients : (Unix.file_descr, unit) Hashtbl.t;
  cm : Mutex.t;  (* stop / listen_fd / clients *)
  (* blocked-DGEMM plans by (arch, precision, m, n, k): a plan bundles
     three tuned kernels plus a blocking sweep, so it gets its own memo
     rather than riding the per-kernel registry.  Degraded plans are
     never stored (same contract as the tuner's fallback-no-cache
     rule). *)
  bplans : (string * string * int * int * int, A.Blocked.plan * float) Hashtbl.t;
  bm : Mutex.t;  (* bplans *)
}

let create ?(now = Unix.gettimeofday) ?(config = default_config) () : t =
  let metrics = Metrics.create ~now () in
  (* the cache dir may hold debris of a previous instance killed
     mid-store: quarantine it before the first lookup can see it *)
  (match config.cfg_cache_dir with
  | Some dir when config.cfg_recover ->
      let r = Cache.recover ~dir () in
      let quarantined = r.Cache.rc_quarantined + r.Cache.rc_tmp_quarantined in
      Metrics.set_cache_recovery metrics ~recovered:r.Cache.rc_valid
        ~quarantined;
      if quarantined > 0 then
        Log.warn (fun m ->
            m "cache recovery: %d valid, %d quarantined (%d torn, %d tmp)"
              r.Cache.rc_valid quarantined r.Cache.rc_quarantined
              r.Cache.rc_tmp_quarantined)
  | _ -> ());
  let breaker =
    if config.cfg_breaker_threshold > 0 then
      Some
        (Breaker.create ~threshold:config.cfg_breaker_threshold
           ~cooldown_s:(config.cfg_breaker_cooldown_ms /. 1000.)
           ~now ())
    else None
  in
  let registry =
    Registry.create ~lru_capacity:config.cfg_lru
      ?cache_dir:config.cfg_cache_dir ?breaker
      ~on_event:(fun ~arch ~kernel ev ->
        Metrics.record_cache_event metrics ev;
        (* keep feeding the process-wide accounting path (CLI, logs) *)
        Tuner.notify_cache_event ~arch ~kernel ev)
      ()
  in
  let sched =
    Scheduler.create ~workers:config.cfg_workers ~capacity:config.cfg_queue
      ~restart_budget:config.cfg_restart_budget ~now ()
  in
  {
    cfg = config;
    now;
    metrics;
    registry;
    sched;
    stop = false;
    listen_fd = None;
    clients = Hashtbl.create 8;
    cm = Mutex.create ();
    bplans = Hashtbl.create 4;
    bm = Mutex.create ();
  }

let metrics t = t.metrics
let registry t = t.registry
let scheduler t = t.sched
let config t = t.cfg
let stopping t = Mutex.protect t.cm (fun () -> t.stop)

let request_stop (t : t) : unit =
  (* may run inside a signal handler: no logging, just flag + nudge *)
  t.stop <- true;
  match t.listen_fd with
  | Some fd -> ( try Unix.shutdown fd Unix.SHUTDOWN_ALL with _ -> ())
  | None -> ()

let drain (t : t) : unit = Scheduler.shutdown t.sched

(* --- request handling ---------------------------------------------------- *)

let handle_tune (t : t) (id : Json.t) (tq : Proto.tune_request) :
    Proto.response =
  let t0 = t.now () in
  let arch = tq.Proto.tq_arch in
  let kernel = tq.Proto.tq_kernel in
  let et = tq.Proto.tq_et in
  let fp = match et with Etype.F32 -> Some A.Ir.Ast.Float | Etype.F64 -> None in
  let space =
    match tq.Proto.tq_space with
    | Some s -> s
    | None -> Tuner.space_for kernel
  in
  let deadline_ms =
    match tq.Proto.tq_deadline_ms with
    | Some _ as d -> d
    | None -> t.cfg.cfg_deadline_ms
  in
  let deadline = Option.map (fun ms -> t0 +. (ms /. 1000.)) deadline_ms in
  (* did THIS request's job die with its worker?  (A coalesced waiter
     handed a lost leader's baseline sees it as an ordinary fallback.) *)
  let lost = ref false in
  let compute () : Registry.computed =
    let job () = Tuner.tune ~et ~jobs:t.cfg.cfg_tune_jobs ~space arch kernel in
    match Scheduler.submit t.sched ?deadline job with
    | None ->
        raise
          (Proto.Overload
             (Printf.sprintf "queue at capacity (%d)"
                (Scheduler.capacity t.sched)))
    | Some fut -> (
        match Scheduler.await fut with
        | Scheduler.Done r ->
            { Registry.c_result = r; c_deadline_expired = false }
        | Scheduler.Expired ->
            (* the deadline passed while the job was queued: degrade to
               the safe baseline via the tuner's fallback path (an
               empty space falls back by construction) *)
            let r = Tuner.tune ~et ~space:[] arch kernel in
            { Registry.c_result = r; c_deadline_expired = true }
        | Scheduler.Lost ->
            (* the worker running the sweep died: the supervisor is
               respawning it, and this request degrades to the safe
               baseline instead of failing or hanging *)
            lost := true;
            let r = Tuner.tune ~et ~space:[] arch kernel in
            { Registry.c_result = r; c_deadline_expired = false }
        | Scheduler.Failed e -> raise e)
  in
  let respond (rs_result : (Proto.reply, Proto.error) Stdlib.result) =
    Metrics.observe_request_ms t.metrics ((t.now () -. t0) *. 1000.);
    { Proto.rs_id = id; rs_result }
  in
  let kernel_reply ?(breaker_open = false) (o : Registry.outcome) : Proto.reply
      =
    let r = o.Registry.o_result in
    let assembly =
      Att.program_to_string ~et ~avx:(arch.Arch.simd = Arch.AVX)
        r.Tuner.best_program
    in
    Proto.R_kernel
      {
        rk_kernel = Kernels.name_to_string ?fp kernel;
        rk_arch = arch.Arch.name;
        rk_assembly = assembly;
        rk_provenance =
          {
            Proto.pv_tier = o.Registry.o_tier;
            pv_config =
              A.Transform.Pipeline.config_to_string
                r.Tuner.best.Tuner.cand_config;
            pv_mflops = r.Tuner.best_score;
            pv_visited = r.Tuner.visited;
            pv_discarded = r.Tuner.discarded;
            pv_fell_back = r.Tuner.fell_back;
            pv_deadline_expired = o.Registry.o_deadline_expired;
            pv_breaker_open = breaker_open;
            pv_tuning_ms = o.Registry.o_tuning_ms;
          };
        rk_degraded = o.Registry.o_degraded;
      }
  in
  match
    Registry.find_or_compute t.registry ~et ~arch ~kernel ~space ~compute
  with
  | exception Proto.Overload detail ->
      Metrics.incr_overload t.metrics;
      respond (Error { Proto.e_code = Proto.e_overload; e_detail = detail })
  | exception Breaker.Open_circuit _ ->
      (* the key's circuit is open: serve the safe baseline immediately
         (annotated, degraded) rather than queueing another doomed
         sweep.  The baseline needs no sweep, so it runs inline. *)
      Metrics.incr_degraded_breaker t.metrics;
      let r = Tuner.tune ~et ~space:[] arch kernel in
      respond
        (Ok
           (kernel_reply ~breaker_open:true
              {
                Registry.o_result = r;
                o_tier = Proto.T_tuned;
                o_degraded = true;
                o_deadline_expired = false;
                o_tuning_ms = 0.;
              }))
  | exception Tuner.No_viable_configuration detail ->
      Metrics.incr_errors t.metrics;
      respond (Error { Proto.e_code = Proto.e_internal; e_detail = detail })
  | exception e ->
      Metrics.incr_errors t.metrics;
      respond
        (Error
           { Proto.e_code = Proto.e_internal; e_detail = Printexc.to_string e })
  | o ->
      Metrics.incr_tier t.metrics o.Registry.o_tier;
      if o.Registry.o_deadline_expired then
        Metrics.incr_degraded_deadline t.metrics
      else if !lost then Metrics.incr_degraded_lost t.metrics
      else if o.Registry.o_degraded then
        Metrics.incr_degraded_fell_back t.metrics;
      if o.Registry.o_tier = Proto.T_tuned then
        Metrics.observe_tuning_ms t.metrics o.Registry.o_tuning_ms;
      respond (Ok (kernel_reply o))

(* --- blocked-DGEMM planning ---------------------------------------------- *)

(* The safe-baseline plan: the degradation target when a blocked
   request's deadline expires or its worker dies.  No sweep — the
   baseline micro-kernel with the analytically-derived blocking and
   baseline packing kernels, all generated inline. *)
let baseline_plan ~(et : Etype.t) ~(workload : Perf.workload) (arch : Arch.t)
    : A.Blocked.plan =
  let bb = Tuner.tune_blocked ~et ~workload ~space:[] arch in
  let pa = Tuner.tune ~et ~space:[] arch Kernels.Pack_a in
  let pb = Tuner.tune ~et ~space:[] arch Kernels.Pack_b in
  {
    A.Blocked.pl_arch = arch;
    pl_et = et;
    pl_blocking = bb.Tuner.bb_blocking;
    pl_mr = bb.Tuner.bb_mr;
    pl_nr = bb.Tuner.bb_nr;
    pl_micro = bb.Tuner.bb_program;
    pl_micro_config = bb.Tuner.bb_candidate;
    pl_pack_a = pa.Tuner.best_program;
    pl_pack_b = pb.Tuner.best_program;
    pl_blocked_mflops = bb.Tuner.bb_blocked_score;
    pl_streamed_mflops = bb.Tuner.bb_streamed_score;
  }

let handle_blocked (t : t) (id : Json.t) (bq : Proto.blocked_request) :
    Proto.response =
  let t0 = t.now () in
  let arch = bq.Proto.bq_arch in
  let et = bq.Proto.bq_et in
  let m = bq.Proto.bq_m and n = bq.Proto.bq_n and k = bq.Proto.bq_k in
  let key = (arch.Arch.name, Etype.name et, m, n, k) in
  let workload = Perf.W_gemm { m; n; k } in
  let deadline_ms =
    match bq.Proto.bq_deadline_ms with
    | Some _ as d -> d
    | None -> t.cfg.cfg_deadline_ms
  in
  let deadline = Option.map (fun ms -> t0 +. (ms /. 1000.)) deadline_ms in
  let respond (rs_result : (Proto.reply, Proto.error) Stdlib.result) =
    Metrics.observe_request_ms t.metrics ((t.now () -. t0) *. 1000.);
    { Proto.rs_id = id; rs_result }
  in
  let reply ~tier ~degraded ~tuning_ms (p : A.Blocked.plan) : Proto.reply =
    let avx = arch.Arch.simd = Arch.AVX in
    let bl = p.A.Blocked.pl_blocking in
    Proto.R_blocked
      {
        rb_arch = arch.Arch.name;
        rb_mc = bl.Mem_model.bl_mc;
        rb_kc = bl.Mem_model.bl_kc;
        rb_nc = bl.Mem_model.bl_nc;
        rb_mr = p.A.Blocked.pl_mr;
        rb_nr = p.A.Blocked.pl_nr;
        rb_micro_config =
          A.Transform.Pipeline.config_to_string
            p.A.Blocked.pl_micro_config.Tuner.cand_config;
        rb_micro_assembly =
          Att.program_to_string ~et ~avx p.A.Blocked.pl_micro;
        rb_pack_a_assembly =
          Att.program_to_string ~et ~avx p.A.Blocked.pl_pack_a;
        rb_pack_b_assembly =
          Att.program_to_string ~et ~avx p.A.Blocked.pl_pack_b;
        rb_blocked_mflops =
          (A.Blocked.predict p workload).Perf.e_mflops;
        rb_streamed_mflops =
          (A.Blocked.predict_streamed p workload).Perf.e_mflops;
        rb_tier = tier;
        rb_degraded = degraded;
        rb_tuning_ms = tuning_ms;
      }
  in
  match Mutex.protect t.bm (fun () -> Hashtbl.find_opt t.bplans key) with
  | Some (p, _) ->
      Metrics.incr_tier t.metrics Proto.T_memory;
      respond (Ok (reply ~tier:Proto.T_memory ~degraded:false ~tuning_ms:0. p))
  | None -> (
      (* no single-flight here: concurrent identical blocked requests
         each run their own sweep (the plan memo only dedupes across
         time).  Plans are requested rarely enough that coalescing
         machinery isn't worth its states. *)
      let job () =
        A.Blocked.plan ~et ~jobs:t.cfg.cfg_tune_jobs ~workload arch
      in
      match Scheduler.submit t.sched ?deadline job with
      | None ->
          Metrics.incr_overload t.metrics;
          respond
            (Error
               {
                 Proto.e_code = Proto.e_overload;
                 e_detail =
                   Printf.sprintf "queue at capacity (%d)"
                     (Scheduler.capacity t.sched);
               })
      | Some fut -> (
          let degrade counter =
            counter t.metrics;
            Metrics.incr_tier t.metrics Proto.T_tuned;
            match baseline_plan ~et ~workload arch with
            | p ->
                respond
                  (Ok (reply ~tier:Proto.T_tuned ~degraded:true ~tuning_ms:0. p))
            | exception Tuner.No_viable_configuration detail ->
                Metrics.incr_errors t.metrics;
                respond
                  (Error { Proto.e_code = Proto.e_internal; e_detail = detail })
          in
          match Scheduler.await fut with
          | Scheduler.Done p ->
              let tuning_ms = (t.now () -. t0) *. 1000. in
              Mutex.protect t.bm (fun () ->
                  Hashtbl.replace t.bplans key (p, tuning_ms));
              Metrics.incr_tier t.metrics Proto.T_tuned;
              Metrics.observe_tuning_ms t.metrics tuning_ms;
              respond
                (Ok (reply ~tier:Proto.T_tuned ~degraded:false ~tuning_ms p))
          | Scheduler.Expired -> degrade Metrics.incr_degraded_deadline
          | Scheduler.Lost -> degrade Metrics.incr_degraded_lost
          | Scheduler.Failed (Tuner.No_viable_configuration detail) ->
              Metrics.incr_errors t.metrics;
              respond
                (Error { Proto.e_code = Proto.e_internal; e_detail = detail })
          | Scheduler.Failed e ->
              Metrics.incr_errors t.metrics;
              respond
                (Error
                   {
                     Proto.e_code = Proto.e_internal;
                     e_detail = Printexc.to_string e;
                   })))

let handle_request (t : t) (rq : Proto.request) : Proto.response =
  let id = rq.Proto.rq_id in
  match rq.Proto.rq_op with
  | Proto.Op_ping ->
      Metrics.incr_request t.metrics "ping";
      { Proto.rs_id = id; rs_result = Ok Proto.R_pong }
  | Proto.Op_stats ->
      Metrics.incr_request t.metrics "stats";
      (* refresh the resilience gauges from their owning components so
         the snapshot can't drift from the real counters *)
      Metrics.set_workers t.metrics
        ~live:(Scheduler.live_workers t.sched)
        ~deaths:(Scheduler.worker_deaths t.sched)
        ~restarts:(Scheduler.worker_restarts t.sched);
      (match Registry.breaker t.registry with
      | Some b ->
          Metrics.set_breaker t.metrics ~open_now:(Breaker.open_now b)
            ~opened_total:(Breaker.opened_total b)
            ~rejected:(Breaker.rejected_total b)
      | None -> ());
      (* host native-execution capability: whether this server could JIT
         and run generated kernels, and which SIMD features cpuid
         reports.  Static per process, so appended at snapshot time
         rather than tracked as a metric. *)
      let native =
        ( "native",
          Json.Obj
            (("supported", Json.Bool (A.Native_check.host_supported ()))
            :: List.map
                 (fun (n, b) -> (n, Json.Bool b))
                 (A.Native_check.host_features ())) )
      in
      let stats =
        match Metrics.snapshot t.metrics with
        | Json.Obj fields -> Json.Obj (fields @ [ native ])
        | j -> j
      in
      { Proto.rs_id = id; rs_result = Ok (Proto.R_stats stats) }
  | Proto.Op_shutdown ->
      Metrics.incr_request t.metrics "shutdown";
      (* also unblocks a parked accept loop, like SIGINT/SIGTERM *)
      request_stop t;
      { Proto.rs_id = id; rs_result = Ok Proto.R_shutting_down }
  | Proto.Op_tune tq ->
      Metrics.incr_request t.metrics "tune";
      if stopping t then
        {
          Proto.rs_id = id;
          rs_result =
            Error
              {
                Proto.e_code = Proto.e_shutting_down;
                e_detail = "server is shutting down";
              };
        }
      else handle_tune t id tq
  | Proto.Op_blocked bq ->
      Metrics.incr_request t.metrics "blocked";
      if stopping t then
        {
          Proto.rs_id = id;
          rs_result =
            Error
              {
                Proto.e_code = Proto.e_shutting_down;
                e_detail = "server is shutting down";
              };
        }
      else handle_blocked t id bq

let handle_line (t : t) (line : string) : string =
  match Proto.parse_request line with
  | Error (id, e) ->
      Metrics.incr_request t.metrics "bad";
      Proto.response_line { Proto.rs_id = id; rs_result = Error e }
  | Ok rq -> (
      match
        Faultpoint.hit fp_handle;
        handle_request t rq
      with
      | rs -> Proto.response_line rs
      | exception e ->
          (* handle_request is supposed to be total; backstop anyway *)
          Metrics.incr_errors t.metrics;
          Proto.response_line
            {
              Proto.rs_id = rq.Proto.rq_id;
              rs_result =
                Error
                  {
                    Proto.e_code = Proto.e_internal;
                    e_detail = Printexc.to_string e;
                  };
            })

(* --- transports ---------------------------------------------------------- *)

let serve_stdio (t : t) : unit =
  let rec loop () =
    if stopping t then ()
    else
      match In_channel.input_line In_channel.stdin with
      | None -> ()
      | Some line when String.trim line = "" -> loop ()
      | Some line ->
          print_string (handle_line t line);
          print_newline ();
          flush stdout;
          loop ()
  in
  loop ();
  drain t

let track_client (t : t) (fd : Unix.file_descr) : unit =
  Mutex.protect t.cm (fun () -> Hashtbl.replace t.clients fd ())

let untrack_client (t : t) (fd : Unix.file_descr) : unit =
  Mutex.protect t.cm (fun () -> Hashtbl.remove t.clients fd)

let serve_client (t : t) (fd : Unix.file_descr) : unit =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let rec loop () =
    match In_channel.input_line ic with
    | None -> ()
    | Some line when String.trim line = "" -> loop ()
    | Some line ->
        output_string oc (handle_line t line);
        output_char oc '\n';
        flush oc;
        if not (stopping t) then loop ()
  in
  (try loop () with Sys_error _ | End_of_file -> ());
  untrack_client t fd;
  try Unix.close fd with _ -> ()

let serve_socket (t : t) (path : string) : unit =
  (* a client that disconnects mid-response must surface as EPIPE in
     the handler thread, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (try Unix.unlink path with _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX path);
  Unix.listen listen_fd 64;
  Mutex.protect t.cm (fun () -> t.listen_fd <- Some listen_fd);
  Log.info (fun m -> m "listening on %s" path);
  let threads = ref [] in
  let rec accept_loop () =
    if stopping t then ()
    else
      match Unix.accept listen_fd with
      | fd, _ ->
          track_client t fd;
          threads := Thread.create (fun () -> serve_client t fd) () :: !threads;
          accept_loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop ()
      | exception Unix.Unix_error _ ->
          (* listen socket shut down under us: stop *)
          ()
  in
  accept_loop ();
  Mutex.protect t.cm (fun () ->
      t.stop <- true;
      t.listen_fd <- None);
  (try Unix.close listen_fd with _ -> ());
  (* unblock every client still parked in a read — receive side only,
     so a response already being written (e.g. the shutdown ack) still
     reaches its client — then join *)
  let fds = Mutex.protect t.cm (fun () -> Hashtbl.fold (fun fd () acc -> fd :: acc) t.clients []) in
  List.iter
    (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
    fds;
  List.iter Thread.join !threads;
  (try Unix.unlink path with _ -> ());
  drain t
