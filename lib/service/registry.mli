(** Two-tier kernel-result cache with single-flight deduplication —
    the serving counterpart of {!Augem.Tuner.tuned}.

    Tier 1 is a {i bounded} in-memory LRU (a server must not grow
    without bound across millions of distinct requests); tier 2 is the
    persistent on-disk store of {!Augem.Tuning_cache}.  Both tiers key
    on the same content address as the tuner — (tuner version, arch,
    kernel, search-space fingerprint) — so the daemon, the [tune] CLI
    and offline sweeps all share one cache population.

    Single-flight: N concurrent requests for the same key trigger
    exactly one compute; the other N-1 attach to the in-flight sweep
    and are handed its result (tier {!Proto.T_coalesced}).  If the
    flight fails (e.g. overload at admission), every attached waiter
    fails with the same exception.

    Degraded results (baseline fallback, deadline expiry) are {i
    never} inserted into either tier — a degraded answer must not
    poison later requests — mirroring the tuner's fell-back rule.

    Every tier decision is reported through the shared
    {!Augem.Tuner.cache_observer} accounting path.

    Resilience: the lookup and compute steps are
    {!Augem_resilience.Faultpoint}s (["registry.lookup"],
    ["registry.compute"]); a crashed persistent store is accounted as a
    store error, never a failed request; and an optional per-key
    {!Augem_resilience.Breaker} short-circuits keys that keep failing —
    a would-be leader on an open key raises
    {!Augem_resilience.Breaker.Open_circuit} (the server catches it and
    serves the safe baseline immediately), while waiters may still
    coalesce onto a live half-open probe flight. *)

type t

(** [create ~lru_capacity ~cache_dir ~breaker ~on_event ()].
    [cache_dir = None] disables the disk tier.  [breaker = None]
    disables circuit breaking.  [on_event] defaults to
    {!Augem.Tuner.notify_cache_event} (the process-wide observer). *)
val create :
  ?lru_capacity:int ->
  ?cache_dir:string ->
  ?breaker:Augem_resilience.Breaker.t ->
  ?on_event:Augem.Tuner.cache_observer ->
  unit ->
  t

(** The breaker passed at creation, for stats snapshots. *)
val breaker : t -> Augem_resilience.Breaker.t option

(** What a compute (the scheduler round-trip) produced. *)
type computed = {
  c_result : Augem.Tuner.result;
  c_deadline_expired : bool;
      (** the baseline was generated because the deadline expired *)
}

type outcome = {
  o_result : Augem.Tuner.result;
  o_tier : Proto.tier;
  o_degraded : bool;
      (** deadline expiry or a fully-discarded space: the safe
          baseline is being served *)
  o_deadline_expired : bool;
  o_tuning_ms : float;  (** wall clock of the compute; 0 on cache hits *)
}

(** The content address a (arch, kernel, space, precision) tuple caches
    under — identical to the tuner's persistent-cache digest.  [?et]
    (default f64) selects the precision component: f32 addresses under
    the s-prefixed kernel name, f64 under the bare one. *)
val digest_of :
  ?et:Augem.Machine.Etype.t ->
  arch:Augem.Machine.Arch.t ->
  kernel:Augem.Ir.Kernels.name ->
  space:Augem.Tuner.candidate list ->
  unit ->
  string

(** Look the key up (L1, then the in-flight table, then L2), running
    [compute] on a miss.  Re-raises [compute]'s exception — to this
    caller and to every coalesced waiter.  Raises
    {!Augem_resilience.Breaker.Open_circuit} without computing when the
    key's circuit is open. *)
val find_or_compute :
  ?et:Augem.Machine.Etype.t ->
  t ->
  arch:Augem.Machine.Arch.t ->
  kernel:Augem.Ir.Kernels.name ->
  space:Augem.Tuner.candidate list ->
  compute:(unit -> computed) ->
  outcome

(** Entries currently in the in-memory tier. *)
val lru_size : t -> int

val lru_capacity : t -> int

(** Requests that attached to another request's flight, ever. *)
val coalesced_total : t -> int

(** Block until {!coalesced_total} reaches [n] — lets tests release a
    gated compute only after every waiter has attached, making
    coalescing assertions deterministic without sleeps. *)
val wait_coalesced : t -> int -> unit
