(** Live service metrics: counters and latency histograms, snapshotted
    as JSON by the [stats] request.

    Everything is guarded by one mutex (mutations are nanoseconds
    against multi-millisecond requests) and safe from any domain or
    thread.  The snapshot is a point-in-time view: the [stats] request
    that takes it has already been counted. *)

type t

val create : unit -> t

(** {2 Counters} *)

val incr_request : t -> string -> unit
(** by op name ("tune", "stats", "ping", "shutdown", "bad") *)

val incr_tier : t -> Proto.tier -> unit
val incr_overload : t -> unit

val incr_degraded_deadline : t -> unit
(** served the baseline because the deadline expired pre-sweep *)

val incr_degraded_fell_back : t -> unit
(** served a sweep result whose whole space was discarded *)

val incr_errors : t -> unit

(** Fold a {!Augem.Tuner.cache_event} into the counters — the shared
    accounting path with the [tune] CLI (disk corruptions, stores,
    store failures). *)
val record_cache_event : t -> Augem.Tuner.cache_event -> unit

(** {2 Latency} *)

(** Whole-request wall clock, admission to response. *)
val observe_request_ms : t -> float -> unit

(** Tuning-sweep wall clock (only requests that ran a sweep). *)
val observe_tuning_ms : t -> float -> unit

(** {2 Reading} *)

(** Counter value by snapshot path, e.g. ["tiers.memory"],
    ["requests.tune"], ["rejects.overload"] — test/validation helper. *)
val get : t -> string -> int

val snapshot : t -> Augem.Json.t
