(** Live service metrics: counters and latency histograms, snapshotted
    as JSON by the [stats] request.

    Everything is guarded by one mutex (mutations are nanoseconds
    against multi-millisecond requests) and safe from any domain or
    thread.  The snapshot is a point-in-time view: the [stats] request
    that takes it has already been counted. *)

type t

(** [create ~now ()] — [now] (default [Unix.gettimeofday]) is sampled
    once for the uptime epoch and again at every snapshot. *)
val create : ?now:(unit -> float) -> unit -> t

(** {2 Counters} *)

val incr_request : t -> string -> unit
(** by op name ("tune", "stats", "ping", "shutdown", "bad") *)

val incr_tier : t -> Proto.tier -> unit
val incr_overload : t -> unit

val incr_degraded_deadline : t -> unit
(** served the baseline because the deadline expired pre-sweep *)

val incr_degraded_fell_back : t -> unit
(** served a sweep result whose whole space was discarded *)

val incr_degraded_lost : t -> unit
(** served the baseline because the worker running the sweep died *)

val incr_degraded_breaker : t -> unit
(** served the baseline because the key's circuit breaker is open *)

val incr_errors : t -> unit

(** {2 Resilience gauges}

    Sampled from the owning component (scheduler, breaker, recovery
    scan) at stats time — the snapshot reflects the component's own
    arithmetic, not a parallel count that could drift. *)

val set_workers : t -> live:int -> deaths:int -> restarts:int -> unit
val set_breaker : t -> open_now:int -> opened_total:int -> rejected:int -> unit
val set_cache_recovery : t -> recovered:int -> quarantined:int -> unit

(** Milliseconds since [create]. *)
val uptime_ms : t -> float

(** Fold a {!Augem.Tuner.cache_event} into the counters — the shared
    accounting path with the [tune] CLI (disk corruptions, stores,
    store failures). *)
val record_cache_event : t -> Augem.Tuner.cache_event -> unit

(** {2 Latency} *)

(** Whole-request wall clock, admission to response. *)
val observe_request_ms : t -> float -> unit

(** Tuning-sweep wall clock (only requests that ran a sweep). *)
val observe_tuning_ms : t -> float -> unit

(** {2 Reading} *)

(** Counter value by snapshot path, e.g. ["tiers.memory"],
    ["requests.tune"], ["rejects.overload"],
    ["resilience.worker_restarts"] (flat aliases like
    ["worker_restarts"] also resolve) — test/validation helper. *)
val get : t -> string -> int

val snapshot : t -> Augem.Json.t
