(** Bounded admission in front of a persistent
    {!Augem_parallel.Taskq} worker pool, with per-request deadlines.

    Admission control: {!submit} returns [None] the instant the queue
    is at capacity — the caller (the server) turns that into a
    structured [E_overload] rejection; nothing ever blocks a producer
    or buffers unboundedly.

    Deadlines are {i admission-to-start}: an absolute timestamp checked
    when a worker picks the job up.  A job whose deadline has passed is
    not run at all — its future resolves to {!Expired} and the caller
    degrades (the server serves the safe-baseline kernel instead of a
    tuned one).  The clock is injectable ([?now]) so expiry is testable
    deterministically, without sleeps.

    Exceptions raised by the job resolve the future to {!Failed};
    awaiters re-classify (the overload exception propagates to every
    coalesced waiter of a single-flight).  One exception is different:
    {!Augem_resilience.Faultpoint.Worker_kill} kills the worker domain
    itself — the pool's supervisor respawns it (budget permitting) and
    the orphaned job's future resolves to {!Lost}, so no awaiter ever
    hangs on a dead worker; the server degrades a {!Lost} job to the
    safe-baseline reply. *)

type t

(** [create ~workers ~capacity ~restart_budget ~now ()] spawns the
    supervised worker domains.  [now] defaults to
    [Unix.gettimeofday]. *)
val create :
  ?workers:int ->
  ?capacity:int ->
  ?restart_budget:int ->
  ?now:(unit -> float) ->
  unit ->
  t

type 'a outcome =
  | Done of 'a
  | Expired  (** deadline passed before a worker could start the job *)
  | Failed of exn
  | Lost  (** the worker running the job died; the job did not finish *)

type 'a future

(** [submit t ?deadline f] enqueues [f]; [None] when the queue is at
    capacity (or the scheduler is shut down).  [deadline] is an
    absolute time in [now]'s timebase. *)
val submit : t -> ?deadline:float -> (unit -> 'a) -> 'a future option

(** Block until the job resolves. *)
val await : 'a future -> 'a outcome

(** The scheduler's clock (for deriving absolute deadlines). *)
val now : t -> float

(** Jobs queued and not yet started. *)
val pending : t -> int

val capacity : t -> int
val workers : t -> int

(** Supervision counters, straight from {!Augem_parallel.Taskq}. *)
val live_workers : t -> int

val worker_deaths : t -> int
val worker_restarts : t -> int

(** Drain and join the worker pool.  Idempotent. *)
val shutdown : t -> unit
