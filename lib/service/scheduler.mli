(** Bounded admission in front of a persistent
    {!Augem_parallel.Taskq} worker pool, with per-request deadlines.

    Admission control: {!submit} returns [None] the instant the queue
    is at capacity — the caller (the server) turns that into a
    structured [E_overload] rejection; nothing ever blocks a producer
    or buffers unboundedly.

    Deadlines are {i admission-to-start}: an absolute timestamp checked
    when a worker picks the job up.  A job whose deadline has passed is
    not run at all — its future resolves to {!Expired} and the caller
    degrades (the server serves the safe-baseline kernel instead of a
    tuned one).  The clock is injectable ([?now]) so expiry is testable
    deterministically, without sleeps.

    Exceptions raised by the job resolve the future to {!Failed};
    awaiters re-classify (the overload exception propagates to every
    coalesced waiter of a single-flight). *)

type t

(** [create ~workers ~capacity ~now ()] spawns the worker domains.
    [now] defaults to [Unix.gettimeofday]. *)
val create :
  ?workers:int -> ?capacity:int -> ?now:(unit -> float) -> unit -> t

type 'a outcome =
  | Done of 'a
  | Expired  (** deadline passed before a worker could start the job *)
  | Failed of exn

type 'a future

(** [submit t ?deadline f] enqueues [f]; [None] when the queue is at
    capacity (or the scheduler is shut down).  [deadline] is an
    absolute time in [now]'s timebase. *)
val submit : t -> ?deadline:float -> (unit -> 'a) -> 'a future option

(** Block until the job resolves. *)
val await : 'a future -> 'a outcome

(** The scheduler's clock (for deriving absolute deadlines). *)
val now : t -> float

(** Jobs queued and not yet started. *)
val pending : t -> int

val capacity : t -> int
val workers : t -> int

(** Drain and join the worker pool.  Idempotent. *)
val shutdown : t -> unit
