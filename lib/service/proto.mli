(** Wire protocol of the kernel service: line-delimited JSON over
    {!Augem.Json}.

    One request per line, one response per line, in completion order
    (responses carry the request's [id] verbatim, so clients may
    pipeline).  Requests:

    {v
    {"id":1,"op":"tune","kernel":"gemm","arch":"sandybridge"}
    {"id":2,"op":"tune","kernel":"axpy","arch":"piledriver",
     "deadline_ms":250,
     "space":[{"unroll":["i",8],"prefetch":{"distance":8,"stores":true}}]}
    {"id":3,"op":"stats"}
    {"id":4,"op":"ping"}
    {"id":5,"op":"shutdown"}
    {"id":6,"op":"blocked","arch":"sandybridge","m":1024,"n":1024,"k":1024}
    v}

    A [tune] response carries the tuned assembly plus provenance (which
    cache tier answered, the winning configuration, predicted MFLOPS,
    sweep statistics, tuning wall-clock) and a [degraded] flag — [true]
    when the safe-baseline kernel was served because the request's
    deadline expired before tuning started, the whole search space was
    discarded, the worker running the sweep died, or the key's circuit
    breaker is open ([provenance.breaker_open = true], the
    [E_circuit_open] annotation):

    {v
    {"id":1,"ok":true,"kernel":"gemm","arch":"sandybridge",
     "assembly":".text\n...","degraded":false,
     "provenance":{"tier":"tuned","config":"jam[j:4,i:8]+...",
                   "mflops":21804.0,"visited":48,"discarded":0,
                   "fell_back":false,"deadline_expired":false,
                   "breaker_open":false,"tuning_ms":812.4}}
    v}

    Failures are structured: [{"id":1,"ok":false,"error":{"code":
    "E_overload","detail":"queue at capacity (8)"}}].  Codes:
    [E_overload] (admission queue full), [E_bad_request] (malformed
    JSON, unknown op/kernel/arch, bad space), [E_shutting_down], and
    [E_internal]. *)

type tune_request = {
  tq_kernel : Augem.Ir.Kernels.name;
  tq_arch : Augem.Machine.Arch.t;
  tq_et : Augem.Machine.Etype.t;
      (** scalar precision from the optional ["precision"] wire field
          (["f32"] or ["f64"]); absent means f64, so pre-precision
          clients are untouched *)
  tq_space : Augem.Tuner.candidate list option;
      (** explicit candidate list overriding the kernel's default
          search space *)
  tq_deadline_ms : float option;
}

(** A [blocked] request: plan the full generated blocked DGEMM — tuned
    micro-kernel with its MC/KC/NC blocking triple plus the two packing
    kernels — for one architecture and problem shape:

    {v
    {"id":6,"op":"blocked","arch":"sandybridge","m":1024,"n":1024,"k":1024}
    v}

    [m]/[n]/[k] are optional (default 1024 each) and size the workload
    the blocking sweep optimizes for. *)
type blocked_request = {
  bq_arch : Augem.Machine.Arch.t;
  bq_et : Augem.Machine.Etype.t;
      (** scalar precision from the optional ["precision"] wire field *)
  bq_m : int;
  bq_n : int;
  bq_k : int;
  bq_deadline_ms : float option;
}

type op =
  | Op_tune of tune_request
  | Op_blocked of blocked_request
  | Op_stats
  | Op_ping
  | Op_shutdown

type request = {
  rq_id : Augem.Json.t;  (** echoed verbatim; any JSON value *)
  rq_op : op;
}

(** Which layer of the service answered a [tune] request. *)
type tier =
  | T_memory  (** bounded in-memory LRU *)
  | T_disk  (** persistent on-disk tier *)
  | T_tuned  (** a tuning sweep ran for this request *)
  | T_coalesced  (** single-flight: joined another request's sweep *)

val tier_to_string : tier -> string

type provenance = {
  pv_tier : tier;
  pv_config : string;
  pv_mflops : float;
  pv_visited : int;
  pv_discarded : int;
  pv_fell_back : bool;
  pv_deadline_expired : bool;
  pv_breaker_open : bool;
      (** served the baseline because the key's circuit is open *)
  pv_tuning_ms : float;  (** 0 for pure cache hits *)
}

type reply =
  | R_kernel of {
      rk_kernel : string;
      rk_arch : string;
      rk_assembly : string;
      rk_provenance : provenance;
      rk_degraded : bool;
    }
  | R_blocked of {
      rb_arch : string;
      rb_mc : int;
      rb_kc : int;
      rb_nc : int;  (** tuned blocking triple *)
      rb_mr : int;
      rb_nr : int;  (** the micro-kernel's register tile *)
      rb_micro_config : string;
      rb_micro_assembly : string;
      rb_pack_a_assembly : string;
      rb_pack_b_assembly : string;
      rb_blocked_mflops : float;  (** predicted, blocked driver *)
      rb_streamed_mflops : float;  (** predicted, unblocked baseline *)
      rb_tier : tier;  (** [T_memory] for a plan-cache hit *)
      rb_degraded : bool;
          (** baseline plan served (deadline expired or worker lost) *)
      rb_tuning_ms : float;
    }
      (** Response to [blocked]: all three generated kernels plus the
          blocking triple and the blocked/streamed cycle-model
          predictions at the requested shape. *)
  | R_stats of Augem.Json.t  (** metrics snapshot *)
  | R_pong
  | R_shutting_down  (** acknowledgement of [shutdown] *)

type error = { e_code : string; e_detail : string }

val e_overload : string
val e_bad_request : string
val e_shutting_down : string
val e_internal : string

(** Annotation (not a response code) for degraded replies served while
    the key's circuit breaker is open. *)
val e_circuit_open : string

type response = {
  rs_id : Augem.Json.t;
  rs_result : (reply, error) Stdlib.result;
}

(** Structured overload signal raised by the admission path and turned
    into an [E_overload] response at the transport boundary. *)
exception Overload of string

(** Decode a request.  On failure, returns the best-effort request id
    (for the error response) and a structured [E_bad_request]. *)
val parse_request : string -> (request, Augem.Json.t * error) Stdlib.result

(** Encode a request (the [augem request] client side). *)
val request_to_json : request -> Augem.Json.t

val candidate_of_json :
  Augem.Json.t -> (Augem.Tuner.candidate, string) Stdlib.result

val candidate_to_json : Augem.Tuner.candidate -> Augem.Json.t
val response_to_json : response -> Augem.Json.t

(** [response_to_json] rendered on one line (no embedded newlines:
    strings escape them), ready for the wire. *)
val response_line : response -> string
