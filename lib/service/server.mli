(** The kernel service runtime: composes {!Proto}, {!Registry},
    {!Scheduler} and {!Metrics} into a long-lived compile-and-serve
    daemon with two transports.

    Request flow for [tune]: admission counter → registry L1 →
    single-flight attach → registry L2 (disk) → bounded scheduler queue
    ([E_overload] when full) → tuning sweep on a worker domain →
    store + L1 insert → response.  A deadline that expires while the
    job is queued degrades the request to the safe-baseline kernel
    (the tuner's PR-1 fallback path) with [degraded: true] instead of
    failing it.

    Transports: [serve_stdio] (one request per stdin line, one response
    per stdout line, EOF = clean shutdown — what the [@serve-smoke]
    alias boots) and [serve_socket] (Unix-domain socket, one thread per
    client, concurrent requests across clients).  A [shutdown] request
    or SIGINT/SIGTERM ({!request_stop}) stops the accept loop, unblocks
    every client, joins their threads, and drains the worker pool.

    Resilience: {!create} first quarantines crash debris in the cache
    dir ({!Augem.Tuning_cache.recover}); worker domains that die are
    respawned under [cfg_restart_budget] and their lost jobs degrade to
    the safe baseline ([degraded.lost]); a key whose sweeps keep
    failing trips a per-key circuit breaker and is served the baseline
    with [provenance.breaker_open = true] until a cooldown probe
    succeeds.  The [stats] snapshot carries the supervision, breaker
    and recovery gauges under ["resilience"]. *)

type config = {
  cfg_workers : int;  (** tuning-worker domains *)
  cfg_queue : int;  (** admission-queue capacity *)
  cfg_lru : int;  (** in-memory tier capacity (entries) *)
  cfg_cache_dir : string option;  (** persistent tier; [None] disables *)
  cfg_deadline_ms : float option;
      (** default per-request deadline; a request's own [deadline_ms]
          overrides *)
  cfg_tune_jobs : int;  (** intra-sweep parallelism of one tuning job *)
  cfg_breaker_threshold : int;
      (** consecutive failures before a key's circuit opens; [0]
          disables circuit breaking *)
  cfg_breaker_cooldown_ms : float;
      (** how long an open circuit waits before admitting a probe *)
  cfg_restart_budget : int;
      (** worker-domain respawns allowed over the server's lifetime *)
  cfg_recover : bool;
      (** run {!Augem.Tuning_cache.recover} on the cache dir at
          {!create}, quarantining write debris of a crashed instance *)
}

val default_config : config

type t

(** [create ~now ~config ()].  [now] is the clock used for deadlines
    (injectable for deterministic tests). *)
val create : ?now:(unit -> float) -> ?config:config -> unit -> t

val metrics : t -> Metrics.t
val registry : t -> Registry.t
val scheduler : t -> Scheduler.t
val config : t -> config

(** Handle one decoded request synchronously (blocks through the
    scheduler for [tune] misses).  Never raises. *)
val handle_request : t -> Proto.request -> Proto.response

(** Parse one wire line and handle it; the response line (no trailing
    newline).  Never raises. *)
val handle_line : t -> string -> string

(** Has a [shutdown] request or {!request_stop} been seen? *)
val stopping : t -> bool

(** Flag the server to stop and unblock a blocked accept loop.
    Safe to call from a signal handler or any thread. *)
val request_stop : t -> unit

(** Serve stdin/stdout until EOF or [shutdown]; drains the worker pool
    before returning. *)
val serve_stdio : t -> unit

(** Bind a Unix-domain socket at [path] (replacing a stale socket
    file), serve until [shutdown]/{!request_stop}, then unblock and
    join every client and drain the worker pool.  The socket file is
    removed on exit. *)
val serve_socket : t -> string -> unit

(** Drain and join the worker pool (idempotent; transports call it on
    the way out — only needed directly when using {!handle_request}
    in-process). *)
val drain : t -> unit
