(* Counters + latency histograms behind one mutex.  See metrics.mli. *)

module Json = Augem.Json
module Tuner = Augem.Tuner

(* Log-ish bucket upper bounds in milliseconds; the last bucket is
   +inf.  Wide enough to separate a microsecond cache hit from a
   multi-second cold sweep. *)
let bucket_bounds_ms =
  [| 0.1; 0.3; 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0; 3000.0; 10000.0 |]

type histogram = {
  counts : int array;  (* length bucket_bounds_ms + 1 *)
  mutable sum_ms : float;
  mutable n : int;
}

let histogram () =
  { counts = Array.make (Array.length bucket_bounds_ms + 1) 0; sum_ms = 0.; n = 0 }

let observe (h : histogram) (ms : float) : unit =
  let rec bucket i =
    if i >= Array.length bucket_bounds_ms then i
    else if ms <= bucket_bounds_ms.(i) then i
    else bucket (i + 1)
  in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.sum_ms <- h.sum_ms +. ms;
  h.n <- h.n + 1

let histogram_to_json (h : histogram) : Json.t =
  Json.Obj
    [
      ("count", Json.Int h.n);
      ("sum_ms", Json.Float h.sum_ms);
      ( "buckets",
        Json.List
          (Array.to_list
             (Array.mapi
                (fun i n ->
                  Json.Obj
                    [
                      ( "le_ms",
                        if i < Array.length bucket_bounds_ms then
                          Json.Float bucket_bounds_ms.(i)
                        else Json.String "inf" );
                      ("n", Json.Int n);
                    ])
                h.counts)) );
    ]

type t = {
  m : Mutex.t;
  now : unit -> float;
  t0 : float;
  requests : (string, int ref) Hashtbl.t;
  mutable tier_memory : int;
  mutable tier_disk : int;
  mutable tier_tuned : int;
  mutable tier_coalesced : int;
  mutable overload : int;
  mutable degraded_deadline : int;
  mutable degraded_fell_back : int;
  mutable degraded_lost : int;
  mutable degraded_breaker : int;
  mutable errors : int;
  mutable disk_corrupt : int;
  mutable stores : int;
  mutable store_errors : int;
  (* resilience gauges: sampled from scheduler / breaker / recovery at
     stats time rather than counted here, so they can't drift from the
     owning component's own arithmetic *)
  mutable g_worker_live : int;
  mutable g_worker_deaths : int;
  mutable g_worker_restarts : int;
  mutable g_breaker_open : int;
  mutable g_breaker_open_total : int;
  mutable g_breaker_rejected : int;
  mutable g_cache_recovered : int;
  mutable g_cache_quarantined : int;
  request_ms : histogram;
  tuning_ms : histogram;
}

let create ?(now = Unix.gettimeofday) () : t =
  {
    m = Mutex.create ();
    now;
    t0 = now ();
    requests = Hashtbl.create 8;
    tier_memory = 0;
    tier_disk = 0;
    tier_tuned = 0;
    tier_coalesced = 0;
    overload = 0;
    degraded_deadline = 0;
    degraded_fell_back = 0;
    degraded_lost = 0;
    degraded_breaker = 0;
    errors = 0;
    disk_corrupt = 0;
    stores = 0;
    store_errors = 0;
    g_worker_live = 0;
    g_worker_deaths = 0;
    g_worker_restarts = 0;
    g_breaker_open = 0;
    g_breaker_open_total = 0;
    g_breaker_rejected = 0;
    g_cache_recovered = 0;
    g_cache_quarantined = 0;
    request_ms = histogram ();
    tuning_ms = histogram ();
  }

let with_lock (t : t) f = Mutex.protect t.m f

let incr_request t op =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.requests op with
      | Some r -> incr r
      | None -> Hashtbl.replace t.requests op (ref 1))

let incr_tier t (tier : Proto.tier) =
  with_lock t (fun () ->
      match tier with
      | Proto.T_memory -> t.tier_memory <- t.tier_memory + 1
      | Proto.T_disk -> t.tier_disk <- t.tier_disk + 1
      | Proto.T_tuned -> t.tier_tuned <- t.tier_tuned + 1
      | Proto.T_coalesced -> t.tier_coalesced <- t.tier_coalesced + 1)

let incr_overload t = with_lock t (fun () -> t.overload <- t.overload + 1)

let incr_degraded_deadline t =
  with_lock t (fun () -> t.degraded_deadline <- t.degraded_deadline + 1)

let incr_degraded_fell_back t =
  with_lock t (fun () -> t.degraded_fell_back <- t.degraded_fell_back + 1)

let incr_degraded_lost t =
  with_lock t (fun () -> t.degraded_lost <- t.degraded_lost + 1)

let incr_degraded_breaker t =
  with_lock t (fun () -> t.degraded_breaker <- t.degraded_breaker + 1)

let incr_errors t = with_lock t (fun () -> t.errors <- t.errors + 1)

let set_workers t ~live ~deaths ~restarts =
  with_lock t (fun () ->
      t.g_worker_live <- live;
      t.g_worker_deaths <- deaths;
      t.g_worker_restarts <- restarts)

let set_breaker t ~open_now ~opened_total ~rejected =
  with_lock t (fun () ->
      t.g_breaker_open <- open_now;
      t.g_breaker_open_total <- opened_total;
      t.g_breaker_rejected <- rejected)

let set_cache_recovery t ~recovered ~quarantined =
  with_lock t (fun () ->
      t.g_cache_recovered <- recovered;
      t.g_cache_quarantined <- quarantined)

let uptime_ms (t : t) : float = (t.now () -. t.t0) *. 1000.

let record_cache_event t (ev : Tuner.cache_event) =
  with_lock t (fun () ->
      match ev with
      (* tier hits/sweeps are counted via incr_tier (the registry knows
         which request they answer); here we fold in the disk-health
         events the shared accounting path reports *)
      | Tuner.Ev_memory_hit | Tuner.Ev_disk_hit | Tuner.Ev_disk_miss
      | Tuner.Ev_swept ->
          ()
      | Tuner.Ev_disk_corrupt _ -> t.disk_corrupt <- t.disk_corrupt + 1
      | Tuner.Ev_store -> t.stores <- t.stores + 1
      | Tuner.Ev_store_error _ -> t.store_errors <- t.store_errors + 1)

let observe_request_ms t ms = with_lock t (fun () -> observe t.request_ms ms)
let observe_tuning_ms t ms = with_lock t (fun () -> observe t.tuning_ms ms)

let get (t : t) (path : string) : int =
  with_lock t (fun () ->
      match path with
      | "tiers.memory" -> t.tier_memory
      | "tiers.disk" -> t.tier_disk
      | "tiers.tuned" -> t.tier_tuned
      | "tiers.coalesced" -> t.tier_coalesced
      | "rejects.overload" -> t.overload
      | "degraded.deadline" -> t.degraded_deadline
      | "degraded.fell_back" -> t.degraded_fell_back
      | "degraded.lost" -> t.degraded_lost
      | "degraded.breaker_open" -> t.degraded_breaker
      | "errors" -> t.errors
      | "cache.disk_corrupt" -> t.disk_corrupt
      | "cache.stores" -> t.stores
      | "cache.store_errors" -> t.store_errors
      | "worker_live" | "resilience.worker_live" -> t.g_worker_live
      | "worker_deaths" | "resilience.worker_deaths" -> t.g_worker_deaths
      | "worker_restarts" | "resilience.worker_restarts" -> t.g_worker_restarts
      | "breaker_open" | "resilience.breaker_open" -> t.g_breaker_open
      | "breaker_open_total" | "resilience.breaker_open_total" ->
          t.g_breaker_open_total
      | "breaker_rejected" | "resilience.breaker_rejected" ->
          t.g_breaker_rejected
      | "cache_recovered" | "resilience.cache_recovered" -> t.g_cache_recovered
      | "cache_quarantined" | "resilience.cache_quarantined" ->
          t.g_cache_quarantined
      | "uptime_ms" -> int_of_float ((t.now () -. t.t0) *. 1000.)
      | _ -> (
          match String.split_on_char '.' path with
          | [ "requests"; op ] -> (
              match Hashtbl.find_opt t.requests op with
              | Some r -> !r
              | None -> 0)
          | _ -> invalid_arg ("Metrics.get: unknown path " ^ path)))

let snapshot (t : t) : Json.t =
  with_lock t (fun () ->
      let requests =
        Hashtbl.fold (fun op r acc -> (op, Json.Int !r) :: acc) t.requests []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      Json.Obj
        [
          ("requests", Json.Obj requests);
          ( "tiers",
            Json.Obj
              [
                ("memory", Json.Int t.tier_memory);
                ("disk", Json.Int t.tier_disk);
                ("tuned", Json.Int t.tier_tuned);
                ("coalesced", Json.Int t.tier_coalesced);
              ] );
          ("rejects", Json.Obj [ ("overload", Json.Int t.overload) ]);
          ( "degraded",
            Json.Obj
              [
                ("deadline", Json.Int t.degraded_deadline);
                ("fell_back", Json.Int t.degraded_fell_back);
                ("lost", Json.Int t.degraded_lost);
                ("breaker_open", Json.Int t.degraded_breaker);
              ] );
          ("errors", Json.Int t.errors);
          ( "cache",
            Json.Obj
              [
                ("disk_corrupt", Json.Int t.disk_corrupt);
                ("stores", Json.Int t.stores);
                ("store_errors", Json.Int t.store_errors);
              ] );
          ( "resilience",
            Json.Obj
              [
                ("worker_live", Json.Int t.g_worker_live);
                ("worker_deaths", Json.Int t.g_worker_deaths);
                ("worker_restarts", Json.Int t.g_worker_restarts);
                ("breaker_open", Json.Int t.g_breaker_open);
                ("breaker_open_total", Json.Int t.g_breaker_open_total);
                ("breaker_rejected", Json.Int t.g_breaker_rejected);
                ("cache_recovered", Json.Int t.g_cache_recovered);
                ("cache_quarantined", Json.Int t.g_cache_quarantined);
              ] );
          ("uptime_ms", Json.Float ((t.now () -. t.t0) *. 1000.));
          ("request_ms", histogram_to_json t.request_ms);
          ("tuning_ms", histogram_to_json t.tuning_ms);
        ])
