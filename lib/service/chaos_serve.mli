(** Deterministic seeded chaos driver: scripted serve sessions under
    injected faults, with the service invariants asserted after each.

    Each session arms one schedule of {!Augem_resilience.Faultpoint}
    triggers (crashes, worker kills, delays, byte corruption), boots a
    fresh in-process {!Server} over a scratch cache directory seeded
    with crash debris, races two client threads through tune requests
    (exercising single-flight, the breaker and supervision), then
    checks:

    - {b no hang}: every request is answered within the session
      deadline — single-flight waiters and futures of dead workers
      are always woken;
    - {b no corrupted entry served}: every [ok] reply carries
      plausible assembly; injected corruption must surface as a cache
      miss or a structured error;
    - {b metrics arithmetic}: tier counters + breaker-degraded replies
      equal the [ok] tune replies, breaker rejections equal
      breaker-degraded replies, every worker death within budget was
      respawned, and the stats snapshot carries the resilience section;
    - {b structured failure}: every [ok:false] reply has a known error
      code.

    Session [i]'s primary trigger walks the (point x action x hit)
    grid, so a run covers the whole fault-point catalog with provably
    distinct schedules; secondary triggers come from a PRNG seeded by
    [seed], so the injected fault schedules are reproducible from
    [seed] alone.  Client-thread interleaving is the one
    non-deterministic input (which racing request a trigger lands on),
    which is the point: the invariants must hold for {i every}
    interleaving of a reproducible schedule. *)

type outcome = {
  co_sessions : int;
  co_schedules : int;  (** distinct fault schedules injected *)
  co_points : string list;  (** distinct fault points exercised *)
  co_requests : int;  (** requests sent (tune + ping + stats) *)
  co_ok : int;
  co_err : int;  (** structured [ok:false] replies *)
  co_degraded : int;  (** [ok] replies served the safe baseline *)
  co_coalesced : int;  (** single-flight attachments observed *)
  co_worker_deaths : int;
  co_injected : int;  (** faults actually fired *)
  co_violations : string list;  (** empty = every invariant held *)
}

(** Run [sessions] (default 40) scripted sessions.  [log] observes one
    line per session (the armed schedule).  Deterministic in [seed]. *)
val run : ?sessions:int -> ?log:(string -> unit) -> seed:int -> unit -> outcome

(** Human-readable summary, violations included. *)
val report : outcome -> string
