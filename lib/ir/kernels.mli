(** The "simple C implementations" the paper feeds to AUGEM (its
    Figures 12, 15, 16 and 17), expressed directly in the IR, plus the
    extension kernels this reproduction adds.  The {!Parser} accepts
    the same programs as C text. *)

(** Helper for building canonical counted loops
    [for (v = from; v < below; v += step)]. *)
val loop :
  string ->
  from:Ast.expr ->
  below:Ast.expr ->
  ?step:Ast.expr ->
  Ast.stmt list ->
  Ast.stmt

val gemm : Ast.kernel
(** Figure 12: the GEMM micro-kernel over packed A (A[l*Mc+i]) and
    per-column-packed B (B[j*Kc+l]), accumulating into C. *)

val gemm_packed : Ast.kernel
(** GEMM over a row-major-packed B block (B[l*N+j]) — the interleaved
    layout GotoBLAS produces, the precondition of the Shuf method. *)

val gemv : Ast.kernel
(** Figure 15: column-sweep GEMV, y += A(:, i) * x\[i\]. *)

val axpy : Ast.kernel
(** Figure 16: AXPY, Y\[i\] += X\[i\] * alpha. *)

val dot : Ast.kernel
(** Figure 17: DOT, res += X\[i\] * Y\[i\], result in a 1-element
    output buffer. *)

val ger : Ast.kernel
(** Extension: rank-1 update A += alpha x y^T (Table 6's GER). *)

val scal : Ast.kernel
(** Extension: DSCAL, X *= alpha (the svSCAL template). *)

val copy : Ast.kernel
(** Extension: DCOPY, Y = X (the svCOPY template). *)

val pack_a : Ast.kernel
(** Blocked-GEMM packing: copy an Mc x Kc block of A (leading
    dimension LDA) into the contiguous A\[l*Mc+i\] layout the GEMM
    micro-kernel consumes.  Unit-stride inner copy — svCOPY shaped. *)

val pack_b : Ast.kernel
(** Blocked-GEMM packing: copy a Kc x Nc block of B (leading
    dimension LDB) into the per-column B\[j*Kc+l\] layout.  Unit-stride
    inner copy — svCOPY shaped. *)

val retype : Ast.dtype -> Ast.kernel -> Ast.kernel
(** [retype Float k] rewrites every FP parameter and declaration of
    [k] to single precision and renames the d-prefixed function to its
    s-prefixed BLAS sibling ([dgemm_kernel] -> [sgemm_kernel]).
    [retype Double] is the identity. *)

val sgemm : Ast.kernel
(** Single-precision GEMM micro-kernel: [retype Float gemm]. *)

val sgemm_packed : Ast.kernel
val sgemv : Ast.kernel

val saxpy : Ast.kernel
(** Single-precision AXPY. *)

val sdot : Ast.kernel
(** Single-precision DOT. *)

val sger : Ast.kernel
val sscal : Ast.kernel

val scopy : Ast.kernel
(** Single-precision COPY. *)

val spack_a : Ast.kernel
(** Single-precision A-panel packing. *)

val spack_b : Ast.kernel
(** Single-precision B-panel packing. *)

(** Kernel identifiers used across the tuner, library models, harness
    and CLI.  A [name] identifies the algorithm; the element precision
    is carried separately (an [Ast.Float]/[Ast.Double] value, usually
    an optional [?fp] argument defaulting to double). *)
type name = Gemm | Gemv | Axpy | Dot | Ger | Scal | Copy | Pack_a | Pack_b

val names : name list

val all : (name * Ast.kernel) list
(** The double-precision kernel set. *)

val all_for : Ast.dtype -> (name * Ast.kernel) list
(** The kernel set at a given FP element type. *)

val kernel_of_name : ?fp:Ast.dtype -> name -> Ast.kernel
val name_to_string : ?fp:Ast.dtype -> name -> string
val name_of_string : string -> name option

val name_of_string_fp : string -> (name * Ast.dtype) option
(** Accepts both bare (double) and s-prefixed (single) spellings:
    ["gemm"] -> [(Gemm, Double)], ["sgemm"] -> [(Gemm, Float)]. *)
