(* Reference interpreter for the IR.  This is the semantic oracle: the
   output of every transformation pass and of the whole assembly
   pipeline is checked against it.  It also counts memory and floating
   point operations, which the performance model's tests cross-check
   against analytic operation counts. *)

open Ast

exception Eval_error of string

let err fmt = Fmt.kstr (fun s -> raise (Eval_error s)) fmt

type value =
  | Vint of int
  | Vdouble of float
  | Vptr of float array * int (* buffer, element offset *)

type stats = {
  mutable loads : int;
  mutable stores : int;
  mutable flops : int;
  mutable prefetches : int;
}

let new_stats () = { loads = 0; stores = 0; flops = 0; prefetches = 0 }

type state = {
  env : (string, value) Hashtbl.t;
  stats : stats;
}

let lookup st v =
  match Hashtbl.find_opt st.env v with
  | Some x -> x
  | None -> err "unbound variable %s" v

let as_int = function
  | Vint n -> n
  | Vdouble _ -> err "expected int, got double"
  | Vptr _ -> err "expected int, got pointer"

let as_double = function
  | Vdouble f -> f
  | Vint _ -> err "expected double, got int"
  | Vptr _ -> err "expected double, got pointer"

let as_ptr = function
  | Vptr (b, o) -> (b, o)
  | Vint _ -> err "expected pointer, got int"
  | Vdouble _ -> err "expected pointer, got double"

let rec eval_expr st (e : expr) : value =
  match e with
  | Int_lit n -> Vint n
  | Double_lit f -> Vdouble f
  | Var v -> lookup st v
  | Index (a, i) ->
      let buf, off = as_ptr (lookup st a) in
      let idx = off + as_int (eval_expr st i) in
      if idx < 0 || idx >= Array.length buf then
        err "load %s[%d] out of bounds (length %d)" a idx (Array.length buf);
      st.stats.loads <- st.stats.loads + 1;
      Vdouble buf.(idx)
  | Neg e -> (
      match eval_expr st e with
      | Vint n -> Vint (-n)
      | Vdouble f -> Vdouble (-.f)
      | Vptr _ -> err "negated pointer")
  | Binop (op, a, b) -> (
      let va = eval_expr st a and vb = eval_expr st b in
      match (va, vb) with
      | Vint x, Vint y -> (
          match op with
          | Add -> Vint (x + y)
          | Sub -> Vint (x - y)
          | Mul -> Vint (x * y)
          | Div ->
              if y = 0 then err "integer division by zero" else Vint (x / y))
      | Vdouble x, Vdouble y ->
          st.stats.flops <- st.stats.flops + 1;
          Vdouble
            (match op with
            | Add -> x +. y
            | Sub -> x -. y
            | Mul -> x *. y
            | Div -> x /. y)
      | Vptr (buf, o), Vint n -> (
          match op with
          | Add -> Vptr (buf, o + n)
          | Sub -> Vptr (buf, o - n)
          | Mul | Div -> err "invalid pointer arithmetic")
      | Vint n, Vptr (buf, o) -> (
          match op with
          | Add -> Vptr (buf, o + n)
          | Sub | Mul | Div -> err "invalid pointer arithmetic")
      | _ -> err "type mismatch in binary operation")

let cmp_holds c (x : int) (y : int) =
  match c with
  | Lt -> x < y
  | Le -> x <= y
  | Gt -> x > y
  | Ge -> x >= y
  | Eq -> x = y
  | Ne -> x <> y

let cmp_values c va vb =
  match (va, vb) with
  | Vint x, Vint y -> cmp_holds c x y
  | Vdouble x, Vdouble y -> (
      match c with
      | Lt -> x < y
      | Le -> x <= y
      | Gt -> x > y
      | Ge -> x >= y
      | Eq -> x = y
      | Ne -> x <> y)
  | Vptr (_, x), Vptr (_, y) -> cmp_holds c x y
  | _ -> err "comparison of incompatible values"

(* An uninitialized pointer is a null pointer: any dereference before
   assignment faults with an out-of-bounds error. *)
let zero_of = function
  | Int -> Vint 0
  | Double | Float -> Vdouble 0.
  | Ptr _ -> Vptr ([||], 0)

let max_steps = 1_000_000_000

let rec exec_stmt st steps (s : stmt) : unit =
  incr steps;
  if !steps > max_steps then err "step budget exceeded (diverging loop?)";
  match s with
  | Decl (t, v, init) ->
      let value =
        match init with Some e -> eval_expr st e | None -> zero_of t
      in
      Hashtbl.replace st.env v value
  | Assign (Lvar v, e) ->
      if not (Hashtbl.mem st.env v) then err "assignment to undeclared %s" v;
      Hashtbl.replace st.env v (eval_expr st e)
  | Assign (Lindex (a, i), e) ->
      let buf, off = as_ptr (lookup st a) in
      let idx = off + as_int (eval_expr st i) in
      if idx < 0 || idx >= Array.length buf then
        err "store %s[%d] out of bounds (length %d)" a idx (Array.length buf);
      st.stats.stores <- st.stats.stores + 1;
      buf.(idx) <- as_double (eval_expr st e)
  | For (h, body) ->
      Hashtbl.replace st.env h.loop_var (eval_expr st h.loop_init);
      let continue () =
        cmp_values h.loop_cmp (lookup st h.loop_var) (eval_expr st h.loop_bound)
      in
      while continue () do
        List.iter (exec_stmt st steps) body;
        let v = as_int (lookup st h.loop_var) in
        let step = as_int (eval_expr st h.loop_step) in
        Hashtbl.replace st.env h.loop_var (Vint (v + step))
      done
  | If (a, c, b, t, f) ->
      if cmp_values c (eval_expr st a) (eval_expr st b) then
        List.iter (exec_stmt st steps) t
      else List.iter (exec_stmt st steps) f
  | Prefetch (_, base, off) ->
      (* Semantically a no-op; validate the address computation anyway. *)
      let _ = lookup st base in
      let _ = as_int (eval_expr st off) in
      st.stats.prefetches <- st.stats.prefetches + 1
  | Comment _ -> ()
  | Tagged (_, body) -> List.iter (exec_stmt st steps) body

(* Arguments for running a kernel. *)
type arg =
  | Aint of int
  | Adouble of float
  | Abuf of float array

let value_of_arg = function
  | Aint n -> Vint n
  | Adouble f -> Vdouble f
  | Abuf b -> Vptr (b, 0)

let run (k : kernel) (args : arg list) : stats =
  if List.length args <> List.length k.k_params then
    err "kernel %s expects %d arguments, got %d" k.k_name
      (List.length k.k_params) (List.length args);
  let st = { env = Hashtbl.create 32; stats = new_stats () } in
  List.iter2
    (fun p a ->
      (match (p.p_type, a) with
      | Int, Aint _
      | (Double | Float), Adouble _
      | Ptr (Double | Float), Abuf _ ->
          ()
      | _ -> err "argument type mismatch for %s" p.p_name);
      Hashtbl.replace st.env p.p_name (value_of_arg a))
    k.k_params args;
  let steps = ref 0 in
  List.iter (exec_stmt st steps) k.k_body;
  st.stats
