(* Abstract syntax of the low-level C subset that AUGEM consumes and
   transforms.  The language is deliberately small: straight-line
   arithmetic over [int] and [double] scalars, element accesses through
   array/pointer variables, counted [for] loops, and software-prefetch
   statements.  This matches the "simple C implementation" inputs shown
   in Figures 12 and 15-17 of the paper, as well as the low-level
   three-address form produced by the Optimized C Kernel Generator. *)

type dtype =
  | Int
  | Double
  | Float (* single precision; typing treats it like [Double], codegen
             derives the kernel's element type from it *)
  | Ptr of dtype

(* The floating-point dtypes.  A kernel is monomorphic in its FP type:
   every FP param, array and scalar shares one precision, derived from
   the parameter list (see [fp_type_of_params]). *)
let rec is_fp_dtype = function
  | Double | Float -> true
  | Int -> false
  | Ptr t -> is_fp_dtype t

let rec base_dtype = function Ptr t -> base_dtype t | t -> t

(* The FP element type of a parameter list: [Float] if any param
   involves it, else [Double] (the default for all-integer kernels,
   which generate no FP code anyway). *)
let fp_type_of_params (params : 'p list) ~(p_type : 'p -> dtype) : dtype =
  if List.exists (fun p -> base_dtype (p_type p) = Float) params then Float
  else Double

type binop =
  | Add
  | Sub
  | Mul
  | Div

type cmpop =
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

type expr =
  | Int_lit of int
  | Double_lit of float
  | Var of string
  | Index of string * expr (* a[e] where a is an array or pointer variable *)
  | Binop of binop * expr * expr
  | Neg of expr

type lvalue =
  | Lvar of string
  | Lindex of string * expr

type prefetch_hint =
  | Prefetch_read (* prefetcht0 *)
  | Prefetch_write (* prefetchw / prefetcht0 depending on ISA *)

(* A counted loop [for (v = init; v cmp bound; v = v + step) body].
   [step] must be a positive integer literal for the loop restructuring
   passes to apply; the front end accepts any expression. *)
type loop_header = {
  loop_var : string;
  loop_init : expr;
  loop_cmp : cmpop;
  loop_bound : expr;
  loop_step : expr;
}

type stmt =
  | Decl of dtype * string * expr option
  | Assign of lvalue * expr
  | For of loop_header * stmt list
  | If of expr * cmpop * expr * stmt list * stmt list
  | Prefetch of prefetch_hint * string * expr (* hint, base variable, element offset *)
  | Comment of string
  | Tagged of tag * stmt list
      (* region annotated by the Template Identifier; [tag] names the
         matched template and records its parameters and live-range
         information (paper section 2.2). *)

and tag = {
  tag_template : string; (* e.g. "mmCOMP", "mmUnrolledCOMP" *)
  tag_params : (string * string) list; (* template parameter bindings *)
  tag_live_out : string list; (* scalars live after the region *)
}

type param = {
  p_name : string;
  p_type : dtype;
}

(* A kernel is a C function with [void] return type. *)
type kernel = {
  k_name : string;
  k_params : param list;
  k_body : stmt list;
}

(* Constructors used pervasively by the transformation passes. *)

let int_lit n = Int_lit n
let var v = Var v
let ( +! ) a b = Binop (Add, a, b)
let ( -! ) a b = Binop (Sub, a, b)
let ( *! ) a b = Binop (Mul, a, b)
let ( /! ) a b = Binop (Div, a, b)

(* Structural size of an expression, used by tests and the simplifier. *)
let rec expr_size = function
  | Int_lit _ | Double_lit _ | Var _ -> 1
  | Index (_, e) | Neg e -> 1 + expr_size e
  | Binop (_, a, b) -> 1 + expr_size a + expr_size b

let rec stmt_count stmts =
  let one = function
    | Decl _ | Assign _ | Prefetch _ | Comment _ -> 1
    | For (_, body) -> 1 + stmt_count body
    | If (_, _, _, t, f) -> 1 + stmt_count t + stmt_count f
    | Tagged (_, body) -> stmt_count body
  in
  List.fold_left (fun acc s -> acc + one s) 0 stmts

(* [subst_expr v e' e] substitutes expression [e'] for every occurrence
   of scalar variable [v] inside [e].  Array base names are name spaces
   of their own and are not substituted. *)
let rec subst_expr v e' e =
  match e with
  | Int_lit _ | Double_lit _ -> e
  | Var x -> if String.equal x v then e' else e
  | Index (a, i) -> Index (a, subst_expr v e' i)
  | Binop (op, a, b) -> Binop (op, subst_expr v e' a, subst_expr v e' b)
  | Neg a -> Neg (subst_expr v e' a)

let subst_lvalue v e' = function
  | Lvar x -> Lvar x
  | Lindex (a, i) -> Lindex (a, subst_expr v e' i)

let rec subst_stmt v e' s =
  match s with
  | Decl (t, x, init) -> Decl (t, x, Option.map (subst_expr v e') init)
  | Assign (lv, e) -> Assign (subst_lvalue v e' lv, subst_expr v e' e)
  | For (h, body) ->
      if String.equal h.loop_var v then s
      else
        let h =
          {
            h with
            loop_init = subst_expr v e' h.loop_init;
            loop_bound = subst_expr v e' h.loop_bound;
            loop_step = subst_expr v e' h.loop_step;
          }
        in
        For (h, List.map (subst_stmt v e') body)
  | If (a, c, b, t, f) ->
      If
        ( subst_expr v e' a,
          c,
          subst_expr v e' b,
          List.map (subst_stmt v e') t,
          List.map (subst_stmt v e') f )
  | Prefetch (h, base, off) -> Prefetch (h, base, subst_expr v e' off)
  | Comment _ -> s
  | Tagged (tag, body) -> Tagged (tag, List.map (subst_stmt v e') body)

(* Rename a scalar variable (definition sites included), used by the
   unroll passes when expanding accumulators. *)
let rec rename_stmt ~from ~into s =
  let re = subst_expr from (Var into) in
  let rl = function
    | Lvar x -> Lvar (if String.equal x from then into else x)
    | Lindex (a, i) -> Lindex (a, re i)
  in
  match s with
  | Decl (t, x, init) ->
      Decl (t, (if String.equal x from then into else x), Option.map re init)
  | Assign (lv, e) -> Assign (rl lv, re e)
  | For (h, body) ->
      if String.equal h.loop_var from then s
      else
        let h =
          {
            h with
            loop_init = re h.loop_init;
            loop_bound = re h.loop_bound;
            loop_step = re h.loop_step;
          }
        in
        For (h, List.map (rename_stmt ~from ~into) body)
  | If (a, c, b, t, f) ->
      If
        ( re a,
          c,
          re b,
          List.map (rename_stmt ~from ~into) t,
          List.map (rename_stmt ~from ~into) f )
  | Prefetch (h, base, off) -> Prefetch (h, base, re off)
  | Comment _ -> s
  | Tagged (tag, body) -> Tagged (tag, List.map (rename_stmt ~from ~into) body)

(* Free scalar variables read by an expression. *)
let rec expr_reads e acc =
  match e with
  | Int_lit _ | Double_lit _ -> acc
  | Var x -> x :: acc
  | Index (a, i) -> expr_reads i (a :: acc)
  | Binop (_, a, b) -> expr_reads a (expr_reads b acc)
  | Neg a -> expr_reads a acc

let expr_vars e = List.sort_uniq String.compare (expr_reads e [])
