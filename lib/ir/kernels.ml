(* The four "simple C implementations" the paper feeds to AUGEM
   (Figures 12, 15, 16 and 17), expressed directly in the IR.  These are
   the canonical inputs of the whole pipeline; the parser in
   [Parser] accepts the same programs as C text. *)

open Ast

let loop v ~from ~below ?(step = Int_lit 1) body =
  For
    ( {
        loop_var = v;
        loop_init = from;
        loop_cmp = Lt;
        loop_bound = below;
        loop_step = step;
      },
      body )

(* Figure 12: the GEMM micro-kernel operating on a packed Mc x Kc block
   of A (column-major within the block: A[l*Mc + i]) and a packed
   Kc x N block of B (B[j*Kc + l]), accumulating into C (leading
   dimension LDC):

     for (j...) for (i...) { res = 0; for (l...) res += A*B; C += res } *)
let gemm : kernel =
  {
    k_name = "dgemm_kernel";
    k_params =
      [
        { p_name = "Mc"; p_type = Int };
        { p_name = "Kc"; p_type = Int };
        { p_name = "N"; p_type = Int };
        { p_name = "LDC"; p_type = Int };
        { p_name = "A"; p_type = Ptr Double };
        { p_name = "B"; p_type = Ptr Double };
        { p_name = "C"; p_type = Ptr Double };
      ];
    k_body =
      [
        Decl (Int, "i", None);
        Decl (Int, "j", None);
        Decl (Int, "l", None);
        Decl (Double, "res", None);
        loop "j" ~from:(Int_lit 0) ~below:(Var "N")
          [
            loop "i" ~from:(Int_lit 0) ~below:(Var "Mc")
              [
                Assign (Lvar "res", Double_lit 0.);
                loop "l" ~from:(Int_lit 0) ~below:(Var "Kc")
                  [
                    Assign
                      ( Lvar "res",
                        Var "res"
                        +! Index ("A", (Var "l" *! Var "Mc") +! Var "i")
                           *! Index ("B", (Var "j" *! Var "Kc") +! Var "l") );
                  ];
                Assign
                  ( Lindex ("C", (Var "j" *! Var "LDC") +! Var "i"),
                    Index ("C", (Var "j" *! Var "LDC") +! Var "i") +! Var "res"
                  );
              ];
          ];
      ];
  }

(* GEMM variant over a B block packed row-major within the panel
   (B[l*N + j]), the interleaved packing GotoBLAS produces for its
   micro-kernels.  With this layout the unrolled j-columns of B are
   contiguous in memory, which is the precondition of the Shuf
   vectorization method (paper section 3.4, Figure 9). *)
let gemm_packed : kernel =
  {
    k_name = "dgemm_kernel_packed";
    k_params =
      [
        { p_name = "Mc"; p_type = Int };
        { p_name = "Kc"; p_type = Int };
        { p_name = "N"; p_type = Int };
        { p_name = "LDC"; p_type = Int };
        { p_name = "A"; p_type = Ptr Double };
        { p_name = "B"; p_type = Ptr Double };
        { p_name = "C"; p_type = Ptr Double };
      ];
    k_body =
      [
        Decl (Int, "i", None);
        Decl (Int, "j", None);
        Decl (Int, "l", None);
        Decl (Double, "res", None);
        loop "j" ~from:(Int_lit 0) ~below:(Var "N")
          [
            loop "i" ~from:(Int_lit 0) ~below:(Var "Mc")
              [
                Assign (Lvar "res", Double_lit 0.);
                loop "l" ~from:(Int_lit 0) ~below:(Var "Kc")
                  [
                    Assign
                      ( Lvar "res",
                        Var "res"
                        +! Index ("A", (Var "l" *! Var "Mc") +! Var "i")
                           *! Index ("B", (Var "l" *! Var "N") +! Var "j") );
                  ];
                Assign
                  ( Lindex ("C", (Var "j" *! Var "LDC") +! Var "i"),
                    Index ("C", (Var "j" *! Var "LDC") +! Var "i") +! Var "res"
                  );
              ];
          ];
      ];
  }

(* Figure 15: column-sweep GEMV, y += A(:, i) * x[i] for each column i.
   The paper writes the primary operation as Y[j] += A[i*LDA + j] *
   scal with scal = X[i]. *)
let gemv : kernel =
  {
    k_name = "dgemv_kernel";
    k_params =
      [
        { p_name = "M"; p_type = Int };
        { p_name = "N"; p_type = Int };
        { p_name = "LDA"; p_type = Int };
        { p_name = "A"; p_type = Ptr Double };
        { p_name = "X"; p_type = Ptr Double };
        { p_name = "Y"; p_type = Ptr Double };
      ];
    k_body =
      [
        Decl (Int, "i", None);
        Decl (Int, "j", None);
        Decl (Double, "scal", None);
        loop "i" ~from:(Int_lit 0) ~below:(Var "N")
          [
            Assign (Lvar "scal", Index ("X", Var "i"));
            loop "j" ~from:(Int_lit 0) ~below:(Var "M")
              [
                Assign
                  ( Lindex ("Y", Var "j"),
                    Index ("Y", Var "j")
                    +! Index ("A", (Var "i" *! Var "LDA") +! Var "j")
                       *! Var "scal" );
              ];
          ];
      ];
  }

(* Figure 16: AXPY, Y[i] += X[i] * alpha. *)
let axpy : kernel =
  {
    k_name = "daxpy_kernel";
    k_params =
      [
        { p_name = "N"; p_type = Int };
        { p_name = "alpha"; p_type = Double };
        { p_name = "X"; p_type = Ptr Double };
        { p_name = "Y"; p_type = Ptr Double };
      ];
    k_body =
      [
        Decl (Int, "i", None);
        loop "i" ~from:(Int_lit 0) ~below:(Var "N")
          [
            Assign
              ( Lindex ("Y", Var "i"),
                Index ("Y", Var "i") +! (Index ("X", Var "i") *! Var "alpha") );
          ];
      ];
  }

(* Figure 17: DOT, res += X[i] * Y[i].  The scalar result is written to
   a one-element output buffer since kernels return void. *)
let dot : kernel =
  {
    k_name = "ddot_kernel";
    k_params =
      [
        { p_name = "N"; p_type = Int };
        { p_name = "X"; p_type = Ptr Double };
        { p_name = "Y"; p_type = Ptr Double };
        { p_name = "res_out"; p_type = Ptr Double };
      ];
    k_body =
      [
        Decl (Int, "i", None);
        Decl (Double, "res", None);
        Assign (Lvar "res", Double_lit 0.);
        loop "i" ~from:(Int_lit 0) ~below:(Var "N")
          [
            Assign
              ( Lvar "res",
                Var "res" +! (Index ("X", Var "i") *! Index ("Y", Var "i")) );
          ];
        Assign
          ( Lindex ("res_out", Int_lit 0),
            Index ("res_out", Int_lit 0) +! Var "res" );
      ];
  }

(* GER: the rank-1 update A += alpha * x y^T (paper Table 6 builds it
   from the Level-1 kernels).  The inner column sweep is an mvCOMP
   pattern with the per-column scalar alpha*y[j]. *)
let ger : kernel =
  {
    k_name = "dger_kernel";
    k_params =
      [
        { p_name = "M"; p_type = Int };
        { p_name = "N"; p_type = Int };
        { p_name = "LDA"; p_type = Int };
        { p_name = "alpha"; p_type = Double };
        { p_name = "X"; p_type = Ptr Double };
        { p_name = "Y"; p_type = Ptr Double };
        { p_name = "A"; p_type = Ptr Double };
      ];
    k_body =
      [
        Decl (Int, "i", None);
        Decl (Int, "j", None);
        Decl (Double, "scal", None);
        loop "j" ~from:(Int_lit 0) ~below:(Var "N")
          [
            Assign (Lvar "scal", Index ("Y", Var "j") *! Var "alpha");
            loop "i" ~from:(Int_lit 0) ~below:(Var "M")
              [
                Assign
                  ( Lindex ("A", (Var "j" *! Var "LDA") +! Var "i"),
                    Index ("A", (Var "j" *! Var "LDA") +! Var "i")
                    +! (Index ("X", Var "i") *! Var "scal") );
              ];
          ];
      ];
  }

(* DSCAL: X *= alpha — exercises the svSCAL extension template. *)
let scal : kernel =
  {
    k_name = "dscal_kernel";
    k_params =
      [
        { p_name = "N"; p_type = Int };
        { p_name = "alpha"; p_type = Double };
        { p_name = "X"; p_type = Ptr Double };
      ];
    k_body =
      [
        Decl (Int, "i", None);
        loop "i" ~from:(Int_lit 0) ~below:(Var "N")
          [ Assign (Lindex ("X", Var "i"), Index ("X", Var "i") *! Var "alpha") ];
      ];
  }

(* DCOPY: Y = X — exercises the svCOPY extension template. *)
let copy : kernel =
  {
    k_name = "dcopy_kernel";
    k_params =
      [
        { p_name = "N"; p_type = Int };
        { p_name = "X"; p_type = Ptr Double };
        { p_name = "Y"; p_type = Ptr Double };
      ];
    k_body =
      [
        Decl (Int, "i", None);
        loop "i" ~from:(Int_lit 0) ~below:(Var "N")
          [ Assign (Lindex ("Y", Var "i"), Index ("X", Var "i")) ];
      ];
  }

(* Pack-A panel: copy an Mc x Kc block of A (leading dimension LDA,
   already offset to the block's first element) into the contiguous
   column-major-within-block layout A[l*Mc + i] the GEMM micro-kernel
   reads.  The inner i-sweep is a unit-stride copy on both sides, so
   it tags as the svCOPY template and vectorizes like DCOPY. *)
let pack_a : kernel =
  {
    k_name = "dpack_a_kernel";
    k_params =
      [
        { p_name = "Mc"; p_type = Int };
        { p_name = "Kc"; p_type = Int };
        { p_name = "LDA"; p_type = Int };
        { p_name = "A"; p_type = Ptr Double };
        { p_name = "P"; p_type = Ptr Double };
      ];
    k_body =
      [
        Decl (Int, "i", None);
        Decl (Int, "l", None);
        loop "l" ~from:(Int_lit 0) ~below:(Var "Kc")
          [
            loop "i" ~from:(Int_lit 0) ~below:(Var "Mc")
              [
                Assign
                  ( Lindex ("P", (Var "l" *! Var "Mc") +! Var "i"),
                    Index ("A", (Var "l" *! Var "LDA") +! Var "i") );
              ];
          ];
      ];
  }

(* Pack-B panel: copy a Kc x Nc block of B (leading dimension LDB,
   offset to the block start) into the per-column stream layout
   B[j*Kc + l].  The inner l-sweep walks one column of B and of the
   packed panel at unit stride — again the svCOPY template. *)
let pack_b : kernel =
  {
    k_name = "dpack_b_kernel";
    k_params =
      [
        { p_name = "Kc"; p_type = Int };
        { p_name = "Nc"; p_type = Int };
        { p_name = "LDB"; p_type = Int };
        { p_name = "B"; p_type = Ptr Double };
        { p_name = "P"; p_type = Ptr Double };
      ];
    k_body =
      [
        Decl (Int, "j", None);
        Decl (Int, "l", None);
        loop "j" ~from:(Int_lit 0) ~below:(Var "Nc")
          [
            loop "l" ~from:(Int_lit 0) ~below:(Var "Kc")
              [
                Assign
                  ( Lindex ("P", (Var "j" *! Var "Kc") +! Var "l"),
                    Index ("B", (Var "j" *! Var "LDB") +! Var "l") );
              ];
          ];
      ];
  }

(* Precision parameterization: the templates above are written once
   with [Double] element types; [retype Float] rewrites every FP
   parameter and declaration to [Float] and renames the d-prefixed
   function to its s-prefixed BLAS sibling (dgemm_kernel ->
   sgemm_kernel).  The loop structure — and therefore the template
   identification and vectorization planning — is shared between the
   two precisions; only the element type differs. *)

let rec retype_dtype fp = function
  | Double -> fp
  | Ptr t -> Ptr (retype_dtype fp t)
  | t -> t

let rec retype_stmt fp s =
  match s with
  | Decl (t, v, init) -> Decl (retype_dtype fp t, v, init)
  | For (h, body) -> For (h, List.map (retype_stmt fp) body)
  | If (a, c, b, t, f) ->
      If (a, c, b, List.map (retype_stmt fp) t, List.map (retype_stmt fp) f)
  | Tagged (tag, body) -> Tagged (tag, List.map (retype_stmt fp) body)
  | Assign _ | Prefetch _ | Comment _ -> s

let retype (fp : dtype) (k : kernel) : kernel =
  if fp = Double then k
  else
    let k_name =
      if String.length k.k_name > 0 && k.k_name.[0] = 'd' then
        "s" ^ String.sub k.k_name 1 (String.length k.k_name - 1)
      else k.k_name
    in
    {
      k_name;
      k_params =
        List.map
          (fun p -> { p with p_type = retype_dtype fp p.p_type })
          k.k_params;
      k_body = List.map (retype_stmt fp) k.k_body;
    }

let sgemm = retype Float gemm
let sgemm_packed = retype Float gemm_packed
let sgemv = retype Float gemv
let saxpy = retype Float axpy
let sdot = retype Float dot
let sger = retype Float ger
let sscal = retype Float scal
let scopy = retype Float copy
let spack_a = retype Float pack_a
let spack_b = retype Float pack_b

type name = Gemm | Gemv | Axpy | Dot | Ger | Scal | Copy | Pack_a | Pack_b

let kernel_of_name ?(fp = Double) n =
  retype fp
    (match n with
    | Gemm -> gemm
    | Gemv -> gemv
    | Axpy -> axpy
    | Dot -> dot
    | Ger -> ger
    | Scal -> scal
    | Copy -> copy
    | Pack_a -> pack_a
    | Pack_b -> pack_b)

let names = [ Gemm; Gemv; Axpy; Dot; Ger; Scal; Copy; Pack_a; Pack_b ]
let all_for fp = List.map (fun n -> (n, kernel_of_name ~fp n)) names
let all = all_for Double

let name_to_string ?(fp = Double) n =
  let base =
    match n with
    | Gemm -> "gemm"
    | Gemv -> "gemv"
    | Axpy -> "axpy"
    | Dot -> "dot"
    | Ger -> "ger"
    | Scal -> "scal"
    | Copy -> "copy"
    | Pack_a -> "pack_a"
    | Pack_b -> "pack_b"
  in
  match fp with Float -> "s" ^ base | _ -> base

let name_of_string = function
  | "gemm" -> Some Gemm
  | "gemv" -> Some Gemv
  | "axpy" -> Some Axpy
  | "dot" -> Some Dot
  | "ger" -> Some Ger
  | "scal" -> Some Scal
  | "copy" -> Some Copy
  | "pack_a" -> Some Pack_a
  | "pack_b" -> Some Pack_b
  | _ -> None

(* Accepts both the bare (double-precision) names and the s-prefixed
   single-precision spellings: "sgemm" -> (Gemm, Float). *)
let name_of_string_fp s =
  match name_of_string s with
  | Some n -> Some (n, Double)
  | None ->
      if String.length s > 1 && s.[0] = 's' then
        match name_of_string (String.sub s 1 (String.length s - 1)) with
        | Some n -> Some (n, Float)
        | None -> None
      else None
