(* C-syntax pretty printing of the IR, used by the CLI's phase dumps,
   the examples, and golden tests. *)

open Ast

let rec pp_dtype fmt = function
  | Int -> Fmt.string fmt "int"
  | Double -> Fmt.string fmt "double"
  | Float -> Fmt.string fmt "float"
  | Ptr t -> Fmt.pf fmt "%a*" pp_dtype t

let binop_str = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let cmpop_str = function
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | Eq -> "=="
  | Ne -> "!="

let prec = function Add | Sub -> 1 | Mul | Div -> 2

let rec pp_expr_prec p fmt = function
  | Int_lit n -> Fmt.int fmt n
  | Double_lit f ->
      if Float.is_integer f && Float.abs f < 1e16 then Fmt.pf fmt "%.1f" f
      else Fmt.pf fmt "%.17g" f
  | Var v -> Fmt.string fmt v
  | Index (a, e) -> Fmt.pf fmt "%s[%a]" a (pp_expr_prec 0) e
  | Neg e -> Fmt.pf fmt "-%a" (pp_expr_prec 3) e
  | Binop (op, a, b) ->
      let q = prec op in
      let body fmt () =
        Fmt.pf fmt "%a %s %a" (pp_expr_prec q) a (binop_str op)
          (pp_expr_prec (q + 1)) b
      in
      if q < p then Fmt.pf fmt "(%a)" body () else body fmt ()

let pp_expr fmt e = pp_expr_prec 0 fmt e

let pp_lvalue fmt = function
  | Lvar v -> Fmt.string fmt v
  | Lindex (a, e) -> Fmt.pf fmt "%s[%a]" a pp_expr e

let rec pp_stmt ~indent fmt s =
  let pad = String.make indent ' ' in
  match s with
  | Decl (t, v, None) -> Fmt.pf fmt "%s%a %s;" pad pp_dtype t v
  | Decl (t, v, Some e) -> Fmt.pf fmt "%s%a %s = %a;" pad pp_dtype t v pp_expr e
  | Assign (lv, e) -> Fmt.pf fmt "%s%a = %a;" pad pp_lvalue lv pp_expr e
  | For (h, body) ->
      Fmt.pf fmt "%sfor (%s = %a; %s %s %a; %s += %a) {@\n%a@\n%s}" pad
        h.loop_var pp_expr h.loop_init h.loop_var (cmpop_str h.loop_cmp)
        pp_expr h.loop_bound h.loop_var pp_expr h.loop_step
        (pp_body ~indent:(indent + 2))
        body pad
  | If (a, c, b, t, []) ->
      Fmt.pf fmt "%sif (%a %s %a) {@\n%a@\n%s}" pad pp_expr a (cmpop_str c)
        pp_expr b
        (pp_body ~indent:(indent + 2))
        t pad
  | If (a, c, b, t, f) ->
      Fmt.pf fmt "%sif (%a %s %a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad pp_expr a
        (cmpop_str c) pp_expr b
        (pp_body ~indent:(indent + 2))
        t pad
        (pp_body ~indent:(indent + 2))
        f pad
  | Prefetch (Prefetch_read, base, off) ->
      Fmt.pf fmt "%s__builtin_prefetch(%s + %a, 0);" pad base pp_expr off
  | Prefetch (Prefetch_write, base, off) ->
      Fmt.pf fmt "%s__builtin_prefetch(%s + %a, 1);" pad base pp_expr off
  | Comment c -> Fmt.pf fmt "%s/* %s */" pad c
  | Tagged (tag, body) ->
      Fmt.pf fmt "%s/* <%s%a> */@\n%a@\n%s/* </%s> */" pad tag.tag_template
        Fmt.(
          list ~sep:nop (fun fmt (k, v) -> Fmt.pf fmt " %s=%s" k v))
        tag.tag_params
        (pp_body ~indent) body pad tag.tag_template

and pp_body ~indent fmt body =
  Fmt.(list ~sep:(any "@\n") (pp_stmt ~indent)) fmt body

let pp_param fmt p = Fmt.pf fmt "%a %s" pp_dtype p.p_type p.p_name

let pp_kernel fmt k =
  Fmt.pf fmt "void %s(%a) {@\n%a@\n}" k.k_name
    Fmt.(list ~sep:(any ", ") pp_param)
    k.k_params
    (pp_body ~indent:2) k.k_body

let expr_to_string e = Fmt.str "%a" pp_expr e
let stmt_to_string s = Fmt.str "%a" (pp_stmt ~indent:0) s
let kernel_to_string k = Fmt.str "%a" pp_kernel k
