(* Recursive-descent parser for the mini-C front end.  Accepts the
   kernel sources shown in the paper (Figures 12 and 15-17): a single
   [void] function with int / double / double* parameters, declarations,
   assignments (including [+=]), canonical counted [for] loops, [if]
   with a single comparison, and [__builtin_prefetch]. *)

open Ast

exception Parse_error of string * int

let err pos fmt = Fmt.kstr (fun s -> raise (Parse_error (s, pos))) fmt

type stream = {
  mutable toks : (Lexer.token * int) list;
}

let peek st =
  match st.toks with [] -> (Lexer.EOF, 0) | t :: _ -> t

let pos st = snd (peek st)

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let got, p = next st in
  if got <> tok then
    err p "expected %s, got %s" (Lexer.token_to_string tok)
      (Lexer.token_to_string got)

let expect_ident st =
  match next st with
  | Lexer.IDENT s, _ -> s
  | t, p -> err p "expected identifier, got %s" (Lexer.token_to_string t)

(* Expressions, precedence climbing: additive < multiplicative < unary. *)
let rec parse_expr st = parse_additive st

and parse_additive st =
  let rec loop acc =
    match peek st with
    | Lexer.PLUS, _ ->
        advance st;
        loop (Binop (Add, acc, parse_multiplicative st))
    | Lexer.MINUS, _ ->
        advance st;
        loop (Binop (Sub, acc, parse_multiplicative st))
    | _ -> acc
  in
  loop (parse_multiplicative st)

and parse_multiplicative st =
  let rec loop acc =
    match peek st with
    | Lexer.STAR, _ ->
        advance st;
        loop (Binop (Mul, acc, parse_unary st))
    | Lexer.SLASH, _ ->
        advance st;
        loop (Binop (Div, acc, parse_unary st))
    | _ -> acc
  in
  loop (parse_unary st)

and parse_unary st =
  match peek st with
  | Lexer.MINUS, _ ->
      advance st;
      Neg (parse_unary st)
  | _ -> parse_atom st

and parse_atom st =
  match next st with
  | Lexer.INT_LIT n, _ -> Int_lit n
  | Lexer.DOUBLE_LIT f, _ -> Double_lit f
  | Lexer.IDENT name, _ -> (
      match peek st with
      | Lexer.LBRACKET, _ ->
          advance st;
          let idx = parse_expr st in
          expect st Lexer.RBRACKET;
          Index (name, idx)
      | _ -> Var name)
  | Lexer.LPAREN, _ ->
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | t, p -> err p "expected expression, got %s" (Lexer.token_to_string t)

let parse_cmpop st =
  match next st with
  | Lexer.LT, _ -> Lt
  | Lexer.LE, _ -> Le
  | Lexer.GT, _ -> Gt
  | Lexer.GE, _ -> Ge
  | Lexer.EQ, _ -> Eq
  | Lexer.NE, _ -> Ne
  | t, p -> err p "expected comparison, got %s" (Lexer.token_to_string t)

let parse_base_type st =
  match next st with
  | Lexer.KW_INT, _ -> Int
  | Lexer.KW_DOUBLE, _ -> Double
  | Lexer.KW_FLOAT, _ -> Float
  | t, p -> err p "expected type, got %s" (Lexer.token_to_string t)

let parse_type st =
  let base = parse_base_type st in
  let rec stars t =
    match peek st with
    | Lexer.STAR, _ ->
        advance st;
        stars (Ptr t)
    | _ -> t
  in
  stars base

(* One lvalue-led statement: [x = e;], [x += e;], [a[i] = e;],
   [a[i] += e;]. *)
let finish_assign st (lv : lvalue) =
  let read_back = function
    | Lvar v -> Var v
    | Lindex (a, i) -> Index (a, i)
  in
  match next st with
  | Lexer.ASSIGN, _ ->
      let e = parse_expr st in
      expect st Lexer.SEMI;
      Assign (lv, e)
  | Lexer.PLUS_ASSIGN, _ ->
      let e = parse_expr st in
      expect st Lexer.SEMI;
      Assign (lv, Binop (Add, read_back lv, e))
  | t, p -> err p "expected = or +=, got %s" (Lexer.token_to_string t)

let rec parse_stmt st : stmt =
  match peek st with
  | Lexer.KW_INT, _ | Lexer.KW_DOUBLE, _ ->
      let t = parse_type st in
      let name = expect_ident st in
      let init =
        match peek st with
        | Lexer.ASSIGN, _ ->
            advance st;
            Some (parse_expr st)
        | _ -> None
      in
      expect st Lexer.SEMI;
      Decl (t, name, init)
  | Lexer.KW_FOR, _ -> parse_for st
  | Lexer.KW_IF, _ -> parse_if st
  | Lexer.IDENT "__builtin_prefetch", _ ->
      advance st;
      expect st Lexer.LPAREN;
      let e = parse_expr st in
      let base, off =
        match e with
        | Var b -> (b, Int_lit 0)
        | Binop (Add, Var b, off) -> (b, off)
        | _ -> err (pos st) "prefetch address must be base + offset"
      in
      let hint =
        match peek st with
        | Lexer.COMMA, _ -> (
            advance st;
            match next st with
            | Lexer.INT_LIT 0, _ -> Prefetch_read
            | Lexer.INT_LIT 1, _ -> Prefetch_write
            | t, p ->
                err p "prefetch rw flag must be 0 or 1, got %s"
                  (Lexer.token_to_string t))
        | _ -> Prefetch_read
      in
      expect st Lexer.RPAREN;
      expect st Lexer.SEMI;
      Prefetch (hint, base, off)
  | Lexer.IDENT name, _ -> (
      advance st;
      match peek st with
      | Lexer.LBRACKET, _ ->
          advance st;
          let idx = parse_expr st in
          expect st Lexer.RBRACKET;
          finish_assign st (Lindex (name, idx))
      | _ -> finish_assign st (Lvar name))
  | t, p -> err p "expected statement, got %s" (Lexer.token_to_string t)

and parse_block_or_stmt st : stmt list =
  match peek st with
  | Lexer.LBRACE, _ ->
      advance st;
      let rec loop acc =
        match peek st with
        | Lexer.RBRACE, _ ->
            advance st;
            List.rev acc
        | _ -> loop (parse_stmt st :: acc)
      in
      loop []
  | _ -> [ parse_stmt st ]

and parse_for st : stmt =
  expect st Lexer.KW_FOR;
  expect st Lexer.LPAREN;
  let v = expect_ident st in
  expect st Lexer.ASSIGN;
  let init = parse_expr st in
  expect st Lexer.SEMI;
  let v' = expect_ident st in
  if not (String.equal v v') then
    err (pos st) "loop condition must test the loop variable %s" v;
  let cmp = parse_cmpop st in
  let bound = parse_expr st in
  expect st Lexer.SEMI;
  let v'' = expect_ident st in
  if not (String.equal v v'') then
    err (pos st) "loop increment must update the loop variable %s" v;
  let step =
    match next st with
    | Lexer.PLUS_ASSIGN, _ -> parse_expr st
    | Lexer.ASSIGN, _ -> (
        (* accept v = v + step *)
        let e = parse_expr st in
        match e with
        | Binop (Add, Var x, step) when String.equal x v -> step
        | Binop (Add, step, Var x) when String.equal x v -> step
        | _ -> err (pos st) "loop increment must have the form %s = %s + c" v v)
    | t, p -> err p "expected loop increment, got %s" (Lexer.token_to_string t)
  in
  expect st Lexer.RPAREN;
  let body = parse_block_or_stmt st in
  For
    ( { loop_var = v; loop_init = init; loop_cmp = cmp; loop_bound = bound;
        loop_step = step },
      body )

and parse_if st : stmt =
  expect st Lexer.KW_IF;
  expect st Lexer.LPAREN;
  let a = parse_expr st in
  let c = parse_cmpop st in
  let b = parse_expr st in
  expect st Lexer.RPAREN;
  let t = parse_block_or_stmt st in
  let f =
    match peek st with
    | Lexer.KW_ELSE, _ ->
        advance st;
        parse_block_or_stmt st
    | _ -> []
  in
  If (a, c, b, t, f)

let parse_param st : param =
  let t = parse_type st in
  let name = expect_ident st in
  { p_name = name; p_type = t }

let parse_kernel_stream st : kernel =
  expect st Lexer.KW_VOID;
  let name = expect_ident st in
  expect st Lexer.LPAREN;
  let rec params acc =
    match peek st with
    | Lexer.RPAREN, _ ->
        advance st;
        List.rev acc
    | Lexer.COMMA, _ ->
        advance st;
        params acc
    | _ -> params (parse_param st :: acc)
  in
  let ps = params [] in
  expect st Lexer.LBRACE;
  let rec body acc =
    match peek st with
    | Lexer.RBRACE, _ ->
        advance st;
        List.rev acc
    | Lexer.EOF, p -> err p "unexpected end of input in function body"
    | _ -> body (parse_stmt st :: acc)
  in
  let b = body [] in
  { k_name = name; k_params = ps; k_body = b }

(* Parse a kernel from C source text; checks types before returning. *)
let parse_kernel (src : string) : kernel =
  let st = { toks = Lexer.tokenize src } in
  let k = parse_kernel_stream st in
  (match peek st with
  | Lexer.EOF, _ -> ()
  | t, p -> err p "trailing input: %s" (Lexer.token_to_string t));
  Typecheck.check_kernel k;
  k

let parse_kernel_result (src : string) : (kernel, string) result =
  match parse_kernel src with
  | k -> Ok k
  | exception Parse_error (msg, p) ->
      Error (Printf.sprintf "parse error at offset %d: %s" p msg)
  | exception Lexer.Lex_error (msg, p) ->
      Error (Printf.sprintf "lex error at offset %d: %s" p msg)
  | exception Typecheck.Type_error msg -> Error ("type error: " ^ msg)
