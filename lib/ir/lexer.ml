(* Hand-written lexer for the mini-C front end. *)

type token =
  | INT_LIT of int
  | DOUBLE_LIT of float
  | IDENT of string
  | KW_VOID
  | KW_INT
  | KW_DOUBLE
  | KW_FLOAT
  | KW_FOR
  | KW_IF
  | KW_ELSE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | ASSIGN
  | PLUS_ASSIGN
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | EOF

exception Lex_error of string * int (* message, position *)

let token_to_string = function
  | INT_LIT n -> string_of_int n
  | DOUBLE_LIT f -> string_of_float f
  | IDENT s -> s
  | KW_VOID -> "void"
  | KW_INT -> "int"
  | KW_DOUBLE -> "double"
  | KW_FLOAT -> "float"
  | KW_FOR -> "for"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | STAR -> "*"
  | PLUS -> "+"
  | MINUS -> "-"
  | SLASH -> "/"
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EQ -> "=="
  | NE -> "!="
  | EOF -> "<eof>"

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let keyword = function
  | "void" -> Some KW_VOID
  | "int" -> Some KW_INT
  | "double" -> Some KW_DOUBLE
  | "float" -> Some KW_FLOAT
  | "for" -> Some KW_FOR
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | _ -> None

(* Tokenize the whole input; positions accompany tokens for error
   reporting in the parser. *)
let tokenize (src : string) : (token * int) list =
  let n = String.length src in
  let rec skip_ws i =
    if i >= n then i
    else
      match src.[i] with
      | ' ' | '\t' | '\n' | '\r' -> skip_ws (i + 1)
      | '/' when i + 1 < n && src.[i + 1] = '/' ->
          let rec eol j = if j >= n || src.[j] = '\n' then j else eol (j + 1) in
          skip_ws (eol (i + 2))
      | '/' when i + 1 < n && src.[i + 1] = '*' ->
          let rec close j =
            if j + 1 >= n then raise (Lex_error ("unterminated comment", i))
            else if src.[j] = '*' && src.[j + 1] = '/' then j + 2
            else close (j + 1)
          in
          skip_ws (close (i + 2))
      | _ -> i
  in
  let rec lex i acc =
    let i = skip_ws i in
    if i >= n then List.rev ((EOF, i) :: acc)
    else
      let c = src.[i] in
      if is_digit c then (
        let j = ref i in
        while !j < n && is_digit src.[!j] do
          incr j
        done;
        let is_float = !j < n && (src.[!j] = '.' || src.[!j] = 'e') in
        if is_float then (
          if !j < n && src.[!j] = '.' then incr j;
          while !j < n && is_digit src.[!j] do
            incr j
          done;
          if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then (
            incr j;
            if !j < n && (src.[!j] = '+' || src.[!j] = '-') then incr j;
            while !j < n && is_digit src.[!j] do
              incr j
            done);
          let text = String.sub src i (!j - i) in
          match float_of_string_opt text with
          | Some f -> lex !j ((DOUBLE_LIT f, i) :: acc)
          | None -> raise (Lex_error ("bad float literal " ^ text, i)))
        else
          let text = String.sub src i (!j - i) in
          lex !j ((INT_LIT (int_of_string text), i) :: acc))
      else if is_alpha c then (
        let j = ref i in
        while !j < n && is_alnum src.[!j] do
          incr j
        done;
        let text = String.sub src i (!j - i) in
        let tok =
          match keyword text with Some k -> k | None -> IDENT text
        in
        lex !j ((tok, i) :: acc))
      else
        let two t = lex (i + 2) ((t, i) :: acc) in
        let one t = lex (i + 1) ((t, i) :: acc) in
        let peek = if i + 1 < n then Some src.[i + 1] else None in
        match (c, peek) with
        | '+', Some '=' -> two PLUS_ASSIGN
        | '<', Some '=' -> two LE
        | '>', Some '=' -> two GE
        | '=', Some '=' -> two EQ
        | '!', Some '=' -> two NE
        | '(', _ -> one LPAREN
        | ')', _ -> one RPAREN
        | '{', _ -> one LBRACE
        | '}', _ -> one RBRACE
        | '[', _ -> one LBRACKET
        | ']', _ -> one RBRACKET
        | ';', _ -> one SEMI
        | ',', _ -> one COMMA
        | '*', _ -> one STAR
        | '+', _ -> one PLUS
        | '-', _ -> one MINUS
        | '/', _ -> one SLASH
        | '=', _ -> one ASSIGN
        | '<', _ -> one LT
        | '>', _ -> one GT
        | _ -> raise (Lex_error (Printf.sprintf "unexpected character %C" c, i))
  in
  lex 0 []
