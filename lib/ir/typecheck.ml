(* A small checker for the IR: catches malformed programs produced by
   buggy transformation passes early, long before they reach code
   generation.  Every pass in [lib/transform] is tested to preserve
   well-typedness. *)

open Ast

exception Type_error of string

let err fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

type env = (string, dtype) Hashtbl.t

(* [Float] and [Double] are one type class for checking purposes (FP
   literals are double-typed, passes synthesize double temporaries);
   a kernel's actual element precision is a whole-kernel property of
   its parameter list, checked separately in [check_kernel]. *)
let rec norm = function
  | Float -> Double
  | Ptr t -> Ptr (norm t)
  | t -> t

let same a b = norm a = norm b

let rec type_of_expr (env : env) (e : expr) : dtype =
  match e with
  | Int_lit _ -> Int
  | Double_lit _ -> Double
  | Var v -> (
      match Hashtbl.find_opt env v with
      | Some t -> t
      | None -> err "unbound variable %s" v)
  | Index (a, i) -> (
      (match type_of_expr env i with
      | Int -> ()
      | t -> err "index of %s has type %a, expected int" a Pp.pp_dtype t);
      match Hashtbl.find_opt env a with
      | Some (Ptr t) -> t
      | Some t -> err "%s indexed but has type %a" a Pp.pp_dtype t
      | None -> err "unbound array %s" a)
  | Neg e -> (
      match type_of_expr env e with
      | Int -> Int
      | Double | Float -> Double
      | Ptr _ -> err "negation of a pointer")
  | Binop (op, a, b) -> (
      let ta = type_of_expr env a and tb = type_of_expr env b in
      match (op, norm ta, norm tb) with
      | _, Int, Int -> Int
      | _, Double, Double -> Double
      | (Add | Sub), Ptr t, Int -> Ptr t
      | Add, Int, Ptr t -> Ptr t
      | _ ->
          err "operands of %s have types %a and %a" (Pp.binop_str op)
            Pp.pp_dtype ta Pp.pp_dtype tb)

let check_cond env a b =
  let ta = type_of_expr env a and tb = type_of_expr env b in
  match (norm ta, norm tb) with
  | Int, Int | Double, Double | Ptr _, Ptr _ -> ()
  | _ ->
      err "comparison of incompatible types %a and %a" Pp.pp_dtype ta
        Pp.pp_dtype tb

let rec check_stmt (env : env) (s : stmt) : unit =
  match s with
  | Decl (t, v, init) ->
      (match init with
      | None -> ()
      | Some e ->
          let te = type_of_expr env e in
          if not (same te t) then
            err "declaration of %s : %a initialized with %a" v Pp.pp_dtype t
              Pp.pp_dtype te);
      Hashtbl.replace env v t
  | Assign (Lvar v, e) -> (
      match Hashtbl.find_opt env v with
      | None -> err "assignment to undeclared variable %s" v
      | Some t ->
          let te = type_of_expr env e in
          if not (same te t) then
            err "assignment of %a value to %s : %a" Pp.pp_dtype te v
              Pp.pp_dtype t)
  | Assign (Lindex (a, i), e) -> (
      (match type_of_expr env i with
      | Int -> ()
      | t -> err "store index has type %a" Pp.pp_dtype t);
      match Hashtbl.find_opt env a with
      | Some (Ptr t) ->
          let te = type_of_expr env e in
          if not (same te t) then
            err "store of %a value into %s : %a*" Pp.pp_dtype te a Pp.pp_dtype
              t
      | Some t -> err "store into non-pointer %s : %a" a Pp.pp_dtype t
      | None -> err "store into undeclared array %s" a)
  | For (h, body) ->
      (match Hashtbl.find_opt env h.loop_var with
      | Some Int -> ()
      | Some t -> err "loop variable %s has type %a" h.loop_var Pp.pp_dtype t
      | None -> err "undeclared loop variable %s" h.loop_var);
      (match type_of_expr env h.loop_init with
      | Int -> ()
      | t -> err "loop init has type %a" Pp.pp_dtype t);
      (match type_of_expr env h.loop_bound with
      | Int -> ()
      | t -> err "loop bound has type %a" Pp.pp_dtype t);
      (match type_of_expr env h.loop_step with
      | Int -> ()
      | t -> err "loop step has type %a" Pp.pp_dtype t);
      List.iter (check_stmt env) body
  | If (a, _, b, t, f) ->
      check_cond env a b;
      List.iter (check_stmt env) t;
      List.iter (check_stmt env) f
  | Prefetch (_, base, off) -> (
      (match type_of_expr env off with
      | Int -> ()
      | t -> err "prefetch offset has type %a" Pp.pp_dtype t);
      match Hashtbl.find_opt env base with
      | Some (Ptr _) -> ()
      | Some t -> err "prefetch of non-pointer %s : %a" base Pp.pp_dtype t
      | None -> err "prefetch of undeclared %s" base)
  | Comment _ -> ()
  | Tagged (_, body) -> List.iter (check_stmt env) body

let initial_env (k : kernel) : env =
  let env = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace env p.p_name p.p_type) k.k_params;
  env

let check_kernel (k : kernel) : unit =
  (* kernels are monomorphic in their FP element type: mixing Float
     and Double pointers in one signature has no single-precision
     lowering *)
  let has t =
    List.exists (fun p -> base_dtype p.p_type = t) k.k_params
  in
  if has Float && has Double then
    err "kernel %s mixes float and double parameters" k.k_name;
  let env = initial_env k in
  List.iter (check_stmt env) k.k_body

let well_typed (k : kernel) : (unit, string) result =
  match check_kernel k with
  | () -> Ok ()
  | exception Type_error msg -> Error msg
