(** Abstract syntax of the low-level C subset AUGEM consumes and
    transforms: straight-line arithmetic over [int] and [double]
    scalars, element accesses through array/pointer variables, counted
    [for] loops, and software-prefetch statements — the "simple C
    implementation" inputs of the paper's Figures 12 and 15-17, as well
    as the three-address form produced by the Optimized C Kernel
    Generator. *)

type dtype =
  | Int
  | Double
  | Float
      (** single precision; typed like [Double], the element type of
          the generated code is derived from the parameter list *)
  | Ptr of dtype

val is_fp_dtype : dtype -> bool
(** [Double], [Float], or a pointer chain ending in one. *)

val base_dtype : dtype -> dtype
(** Strip [Ptr] wrappers. *)

val fp_type_of_params : 'p list -> p_type:('p -> dtype) -> dtype
(** The FP element type of a parameter list: [Float] if any parameter
    involves it, else [Double].  Kernels are monomorphic in their FP
    type. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div

type cmpop =
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne

type expr =
  | Int_lit of int
  | Double_lit of float
  | Var of string
  | Index of string * expr  (** [a[e]]: array or pointer element *)
  | Binop of binop * expr * expr
  | Neg of expr

type lvalue =
  | Lvar of string
  | Lindex of string * expr

type prefetch_hint =
  | Prefetch_read
  | Prefetch_write

(** A counted loop [for (v = init; v cmp bound; v += step)].  The loop
    restructuring passes require a positive integer-literal [step]. *)
type loop_header = {
  loop_var : string;
  loop_init : expr;
  loop_cmp : cmpop;
  loop_bound : expr;
  loop_step : expr;
}

type stmt =
  | Decl of dtype * string * expr option
  | Assign of lvalue * expr
  | For of loop_header * stmt list
  | If of expr * cmpop * expr * stmt list * stmt list
  | Prefetch of prefetch_hint * string * expr
      (** hint, base pointer, element offset *)
  | Comment of string
  | Tagged of tag * stmt list
      (** region annotated by the Template Identifier (paper 2.2) *)

and tag = {
  tag_template : string;  (** e.g. "mmCOMP", "mmUnrolledCOMP" *)
  tag_params : (string * string) list;
  tag_live_out : string list;  (** scalars live after the region *)
}

type param = {
  p_name : string;
  p_type : dtype;
}

(** A kernel: a C function with [void] return type. *)
type kernel = {
  k_name : string;
  k_params : param list;
  k_body : stmt list;
}

(** {1 Constructors} *)

val int_lit : int -> expr
val var : string -> expr
val ( +! ) : expr -> expr -> expr
val ( -! ) : expr -> expr -> expr
val ( *! ) : expr -> expr -> expr
val ( /! ) : expr -> expr -> expr

(** {1 Traversals} *)

(** Structural size of an expression. *)
val expr_size : expr -> int

val stmt_count : stmt list -> int

(** Substitute an expression for every occurrence of a scalar variable
    (array base names are a namespace of their own). *)
val subst_expr : string -> expr -> expr -> expr

val subst_lvalue : string -> expr -> lvalue -> lvalue
val subst_stmt : string -> expr -> stmt -> stmt

(** Rename a scalar variable, definition sites included (used by
    unroll&jam when expanding accumulators). *)
val rename_stmt : from:string -> into:string -> stmt -> stmt

val expr_reads : expr -> string list -> string list

(** Free variables of an expression (array bases included), sorted. *)
val expr_vars : expr -> string list
