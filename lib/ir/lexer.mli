(** Hand-written lexer for the mini-C front end. *)

type token =
  | INT_LIT of int
  | DOUBLE_LIT of float
  | IDENT of string
  | KW_VOID
  | KW_INT
  | KW_DOUBLE
  | KW_FLOAT
  | KW_FOR
  | KW_IF
  | KW_ELSE
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | ASSIGN
  | PLUS_ASSIGN
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | EOF

exception Lex_error of string * int
(** Message and byte offset. *)

val token_to_string : token -> string

(** Tokenize a whole input; each token carries its byte offset.  Line
    ([//]) and block comments are skipped.  The list always ends with
    [EOF]. *)
val tokenize : string -> (token * int) list
