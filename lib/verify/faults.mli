(** Fault injection into generated assembly programs.

    The verification harness is itself never tested by normal runs: a
    harness that compared nothing would still report "ok".  This module
    deliberately corrupts generated {!Augem_machine.Insn.program}s with
    single-instruction mutations — dropped stores, swapped
    non-commutative operands, perturbed displacements and immediates,
    retargeted registers, flipped branch conditions — so the mutation
    meta-test can {i measure} the harness's detection rate instead of
    trusting it.  All enumeration and sampling is deterministic. *)

type kind =
  | Drop_store  (** delete a vector or scalar store *)
  | Swap_operands  (** swap src1/src2 of a non-commutative FP op *)
  | Perturb_disp  (** +8 bytes on a load/store/broadcast displacement *)
  | Perturb_imm  (** nudge an integer immediate *)
  | Retarget_register  (** read a different SIMD register *)
  | Flip_branch  (** off-by-one / inverted branch condition *)

(** One injectable fault: a mutation [f_kind] of the instruction at
    [f_index] in the program. *)
type fault = {
  f_kind : kind;
  f_index : int;
  f_descr : string;  (** human-readable site description *)
}

val kind_to_string : kind -> string
val describe : fault -> string

(** Every applicable single-instruction fault of the program, in
    instruction order.  Only sites whose corruption is observable
    through the kernel's input/output contract are enumerated:
    prefetches, comments and labels are never mutated, and by default
    neither are stack-frame bookkeeping stores (callee-saved saves,
    scratch spills), [rsp] adjustments, or loop-guard branch
    conditions — mutating those yields {i equivalent mutants} (a
    dropped spill reloads a zero cell and at worst reroutes work
    through the always-correct remainder loop; a flipped loop guard
    shifts one boundary iteration the remainder loop absorbs), which
    would poison the detection-rate metric with faults no
    output-comparison oracle can see.  Pass [~unobservable:true] to
    enumerate those sites anyway. *)
val enumerate :
  ?unobservable:bool -> Augem_machine.Insn.program -> fault list

(** A deterministic subset of {!enumerate} of size at most [max],
    spread evenly across the program ([seed] rotates the choice). *)
val sample : ?seed:int -> max:int -> Augem_machine.Insn.program -> fault list

(** The mutated program.  Raises [Invalid_argument] if the fault does
    not apply to the instruction at its index (a stale fault from a
    different program). *)
val apply : Augem_machine.Insn.program -> fault -> Augem_machine.Insn.program
