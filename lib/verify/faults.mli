(** Fault injection into generated assembly programs.

    The verification harness is itself never tested by normal runs: a
    harness that compared nothing would still report "ok".  This module
    deliberately corrupts generated {!Augem_machine.Insn.program}s with
    single-instruction mutations — dropped stores, swapped
    non-commutative operands, perturbed displacements and immediates,
    retargeted registers, flipped branch conditions — so the mutation
    meta-test can {i measure} the harness's detection rate instead of
    trusting it.  All enumeration and sampling is deterministic. *)

type kind =
  | Drop_store  (** delete a vector or scalar store *)
  | Swap_operands  (** swap src1/src2 of a non-commutative FP op *)
  | Perturb_disp  (** +8 bytes on a load/store/broadcast displacement *)
  | Perturb_imm  (** nudge an integer immediate *)
  | Retarget_register  (** read a different SIMD register *)
  | Flip_branch  (** off-by-one / inverted branch condition *)
  | Asm_drop_save  (** delete a callee-saved register's stack save *)
  | Asm_drop_restore  (** delete a callee-saved register's restore *)
  | Asm_drop_push  (** delete a [Push] (unbalances the stack) *)
  | Asm_drop_pop  (** delete a [Pop] *)
  | Asm_drop_zeroing  (** delete an accumulator's xor-zeroing idiom *)
  | Asm_drop_vzeroupper  (** delete the AVX->SSE transition fence *)
  | Asm_retarget_jump  (** point a branch at a label that does not exist *)
  | Asm_clobber_callee_saved
      (** redirect an instruction's destination to a callee-saved
          register the program never saves *)
  | Asm_swap_sse
      (** swap src1/src2 of a two-operand SSE encoding, breaking the
          [dst = src1] invariant *)

(** One injectable fault: a mutation [f_kind] of the instruction at
    [f_index] in the program. *)
type fault = {
  f_kind : kind;
  f_index : int;
  f_descr : string;  (** human-readable site description *)
  f_arg : int option;
      (** kind-specific operand (e.g. the [Reg.gpr_index] of the
          clobber target) *)
}

val kind_to_string : kind -> string
val describe : fault -> string

(** Every applicable single-instruction fault of the program, in
    instruction order.  Only sites whose corruption is observable
    through the kernel's input/output contract are enumerated:
    prefetches, comments and labels are never mutated, and by default
    neither are stack-frame bookkeeping stores (callee-saved saves,
    scratch spills), [rsp] adjustments, or loop-guard branch
    conditions — mutating those yields {i equivalent mutants} (a
    dropped spill reloads a zero cell and at worst reroutes work
    through the always-correct remainder loop; a flipped loop guard
    shifts one boundary iteration the remainder loop absorbs), which
    would poison the detection-rate metric with faults no
    output-comparison oracle can see.  Pass [~unobservable:true] to
    enumerate those sites anyway. *)
val enumerate :
  ?unobservable:bool -> Augem_machine.Insn.program -> fault list

(** A deterministic subset of {!enumerate} of size at most [max],
    spread evenly across the program ([seed] rotates the choice). *)
val sample : ?seed:int -> max:int -> Augem_machine.Insn.program -> fault list

(** The asm-level fault classes ([Asm_*]): each site is chosen so that
    a sound static checker must flag the mutant — dropped saves /
    restores / push / pop violate the ABI contract on some path,
    retargeted jumps name an undefined label, the clobber target is a
    callee-saved register the program never saves, dropped zeroings
    leave a later read undefined (sites whose destination is defined
    earlier, or in [entry], or never read again are skipped as
    statically unobservable), and [Asm_swap_sse] (enumerated only when
    [avx] is false) breaks the two-operand encoding invariant. *)
val enumerate_asm :
  ?avx:bool ->
  ?entry:Augem_machine.Reg.t list ->
  Augem_machine.Insn.program ->
  fault list

(** Deterministic subset of {!enumerate_asm}, like {!sample}. *)
val sample_asm :
  ?seed:int ->
  ?avx:bool ->
  ?entry:Augem_machine.Reg.t list ->
  max:int ->
  Augem_machine.Insn.program ->
  fault list

(** The mutated program.  Raises [Invalid_argument] if the fault does
    not apply to the instruction at its index (a stale fault from a
    different program). *)
val apply : Augem_machine.Insn.program -> fault -> Augem_machine.Insn.program
