(** Per-pass differential oracle over the transformation pipeline.

    [Pipeline.apply] is a fold over named passes; this module replays
    that fold one pass at a time, running the IR interpreter
    ({!Augem_ir.Eval}) on randomized inputs after every step and
    re-typechecking the intermediate kernel.  The outputs of every
    intermediate kernel must agree (within a floating-point tolerance,
    since accumulator expansion legally reassociates sums) with the
    untransformed source kernel.  On divergence the oracle reports
    {i which pass} miscompiled, with a line diff of the IR before and
    after the guilty pass — turning "the pipeline is wrong somewhere"
    into a one-pass bug report. *)

(** Why a pass was convicted. *)
type reason =
  | R_crash of string  (** the pass itself raised *)
  | R_type_error of string  (** output kernel failed to re-typecheck *)
  | R_eval_fault of string  (** interpreter fault on the output kernel *)
  | R_diverged of string  (** outputs differ from the source kernel *)

type divergence = {
  div_pass : string;  (** name of the guilty pass *)
  div_pass_index : int;  (** 0-based position in the pass list *)
  div_reason : reason;
  div_before : Augem_ir.Ast.kernel;  (** kernel entering the pass *)
  div_after : Augem_ir.Ast.kernel option;
      (** kernel leaving the pass ([None] if the pass crashed) *)
  div_diff : string;  (** pretty-printed before/after line diff *)
}

val reason_to_string : reason -> string

(** Multi-line report: pass name, reason, and the IR diff. *)
val divergence_to_string : divergence -> string

(** Randomized argument sets for a kernel, derived from its parameter
    list: every [int] parameter gets the same small size, [double]
    parameters a fixed scalar, and pointer parameters a deterministic
    pseudo-random buffer large enough for quadratic subscripts.  One
    argument set per element of [sizes] (default [[4; 7]]). *)
val default_inputs :
  ?sizes:int list -> ?seed:int -> Augem_ir.Ast.kernel -> Augem_ir.Eval.arg list list

(** Run the pass list differentially.  Buffers in [inputs] are copied
    before every run, never mutated.  Returns the fully transformed
    kernel, or the first divergence.  Raises [Invalid_argument] if the
    {i source} kernel already faults on the inputs (the oracle needs a
    healthy reference). *)
val check_passes :
  ?tol:float ->
  inputs:Augem_ir.Eval.arg list list ->
  Augem_ir.Ast.kernel ->
  (string * (Augem_ir.Ast.kernel -> Augem_ir.Ast.kernel)) list ->
  (Augem_ir.Ast.kernel, divergence) result

(** [check kernel config]: differential check of the exact pass
    sequence [Pipeline.apply kernel config] would run, on
    {!default_inputs} (or explicit [inputs]). *)
val check :
  ?tol:float ->
  ?inputs:Augem_ir.Eval.arg list list ->
  Augem_ir.Ast.kernel ->
  Augem_transform.Pipeline.config ->
  (Augem_ir.Ast.kernel, divergence) result

(** Checked drop-in for [Pipeline.apply]: same result on success, but
    every intermediate pass is verified; the first miscompiling pass is
    reported via [Error] instead of silently flowing downstream. *)
val apply_checked :
  ?tol:float ->
  ?inputs:Augem_ir.Eval.arg list list ->
  Augem_ir.Ast.kernel ->
  Augem_transform.Pipeline.config ->
  (Augem_ir.Ast.kernel, divergence) result

(** Static machine-code verification of the final generated program:
    run the {!Augem_analysis.Asmcheck} lint suite under the precise
    entry configuration of the kernel signature ([params]), or the
    conservative ABI configuration when the signature is unknown.
    Complements the dynamic differential check: the oracle convicts
    miscompiling IR passes, this convicts malformed machine code. *)
val check_static :
  avx:bool ->
  ?params:Augem_ir.Ast.param list ->
  Augem_machine.Insn.program ->
  Augem_analysis.Asmcheck.finding list

(** {2 Staged-lowering check} *)

(** Why a staged lowering was rejected. *)
type lowering_failure =
  | L_divergence of divergence  (** a C pass miscompiled *)
  | L_stage of string * string
      (** a lowering stage failed: stage name, rendered error *)

val lowering_failure_to_string : lowering_failure -> string

(** Differential check of the C passes (exactly {!check}) followed by a
    full staged lowering ({!Augem_driver.Lower.run}) with per-stage
    type-checking and the static machine-code gate armed.  Success
    returns the complete trace. *)
val check_lowering :
  ?tol:float ->
  ?inputs:Augem_ir.Eval.arg list list ->
  arch:Augem_machine.Arch.t ->
  config:Augem_transform.Pipeline.config ->
  Augem_ir.Ast.kernel ->
  (Augem_driver.Trace.t, lowering_failure) result
