(* Structured diagnostics for failed tuning / generation candidates.
   See diag.mli. *)

type stage =
  | S_pipeline
  | S_codegen
  | S_schedule
  | S_score
  | S_simulate
  | S_verify
  | S_asmcheck
  | S_cache

type code =
  | E_out_of_registers
  | E_gpr_pressure
  | E_codegen
  | E_strength_reduction
  | E_unroll
  | E_no_hot_loop
  | E_budget_exceeded
  | E_sim_fault
  | E_type_error
  | E_eval_error
  | E_mismatch
  | E_lint
  | E_cache_corrupt
  | E_unexpected of string

type t = {
  d_code : code;
  d_stage : stage;
  d_stage_name : string option;
  d_kernel : string;
  d_arch : string;
  d_config : string;
  d_detail : string;
}

let stage_to_string = function
  | S_pipeline -> "pipeline"
  | S_codegen -> "codegen"
  | S_schedule -> "schedule"
  | S_score -> "score"
  | S_simulate -> "simulate"
  | S_verify -> "verify"
  | S_asmcheck -> "asmcheck"
  | S_cache -> "cache"

let code_to_string = function
  | E_out_of_registers -> "out-of-registers"
  | E_gpr_pressure -> "gpr-pressure"
  | E_codegen -> "codegen-error"
  | E_strength_reduction -> "strength-reduction-error"
  | E_unroll -> "unroll-error"
  | E_no_hot_loop -> "no-hot-loop"
  | E_budget_exceeded -> "budget-exceeded"
  | E_sim_fault -> "sim-fault"
  | E_type_error -> "type-error"
  | E_eval_error -> "eval-error"
  | E_mismatch -> "output-mismatch"
  | E_lint -> "lint-findings"
  | E_cache_corrupt -> "cache-corrupt"
  | E_unexpected exn -> "unexpected:" ^ exn

let to_string d =
  let stage =
    match d.d_stage_name with
    | Some n -> Printf.sprintf "%s(%s)" (stage_to_string d.d_stage) n
    | None -> stage_to_string d.d_stage
  in
  Printf.sprintf "%s@%s %s/%s [%s]: %s"
    (code_to_string d.d_code)
    stage d.d_kernel d.d_arch d.d_config d.d_detail

let make ?stage_name ~code ~stage ~kernel ~arch ~config ~detail () =
  {
    d_code = code;
    d_stage = stage;
    d_stage_name = stage_name;
    d_kernel = kernel;
    d_arch = arch;
    d_config = config;
    d_detail = detail;
  }

let code_of_exn = function
  | Failure msg -> E_unexpected ("Failure: " ^ msg)
  | Invalid_argument msg -> E_unexpected ("Invalid_argument: " ^ msg)
  | Not_found -> E_unexpected "Not_found"
  | Stack_overflow -> E_unexpected "Stack_overflow"
  | exn -> E_unexpected (Printexc.to_string exn)

let histogram (ds : t list) : (string * int) list =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun d ->
      let key = code_to_string d.d_code in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    ds;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (ka, a) (kb, b) ->
         match compare b a with 0 -> compare ka kb | c -> c)

let pp_histogram fmt (h : (string * int) list) =
  if h = [] then Format.fprintf fmt "(no failures)"
  else
    List.iteri
      (fun i (k, n) ->
        if i > 0 then Format.fprintf fmt "@\n";
        Format.fprintf fmt "%6d  %s" n k)
      h
