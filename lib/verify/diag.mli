(** Structured diagnostics for failed tuning / generation candidates.

    Every candidate the tuner discards — register pressure, codegen
    faults, pathological programs, unexpected exceptions — is recorded
    as one of these instead of being silently counted or crashing the
    sweep.  The records aggregate into a failure-reason histogram that
    survives in the tuner's result, so a sweep over a hostile search
    space reports {i why} it discarded what it discarded. *)

(** Pipeline stage at which a candidate died. *)
type stage =
  | S_pipeline  (** source-to-source transformation *)
  | S_codegen  (** instruction selection / register allocation *)
  | S_schedule  (** post-pass scheduling *)
  | S_score  (** cycle-model performance prediction *)
  | S_simulate  (** functional simulation *)
  | S_verify  (** output comparison against the reference BLAS *)
  | S_asmcheck  (** machine-code static verification ({!Asmcheck}) *)
  | S_cache  (** persistent tuning-cache load/store *)

(** Classified failure reason. *)
type code =
  | E_out_of_registers  (** SIMD register pressure *)
  | E_gpr_pressure  (** general-purpose register pressure *)
  | E_codegen  (** instruction-selection fault *)
  | E_strength_reduction
      (** the strength-reduction pass hit an index shape its own
          decomposition invariants rule out *)
  | E_unroll  (** loop restructuring rejected the kernel *)
  | E_no_hot_loop  (** cycle model found no loop to score *)
  | E_budget_exceeded  (** program too large for the step budget *)
  | E_sim_fault  (** functional simulator fault *)
  | E_type_error  (** transformed kernel failed to re-typecheck *)
  | E_eval_error  (** IR interpreter fault *)
  | E_mismatch  (** outputs diverged from the reference *)
  | E_lint  (** the static machine-code checker reported findings *)
  | E_cache_corrupt
      (** a persistent tuning-cache file failed to load (bad magic,
          foreign key, checksum mismatch, unreadable); always a cache
          miss, never a crash *)
  | E_unexpected of string  (** anything else; payload names the exception *)

type t = {
  d_code : code;
  d_stage : stage;
  d_stage_name : string option;
      (** precise lowering-stage attribution from the staged driver
          (e.g. ["emit-body"]), when the failure came out of a
          {!Augem_driver.Lower} stage *)
  d_kernel : string;  (** kernel name, e.g. "gemm" *)
  d_arch : string;  (** architecture name *)
  d_config : string;  (** pretty-printed tuning configuration *)
  d_detail : string;  (** free-form message from the failure site *)
}

val stage_to_string : stage -> string
val code_to_string : code -> string

(** One-line rendering: [code@stage kernel/arch config: detail],
    with the stage shown as [stage(stage-name)] when the precise
    lowering stage is known. *)
val to_string : t -> string

val make :
  ?stage_name:string ->
  code:code ->
  stage:stage ->
  kernel:string ->
  arch:string ->
  config:string ->
  detail:string ->
  unit ->
  t

(** Classify an arbitrary exception into a code (the catch-all path of
    the tuner): [Failure]/[Invalid_argument] payloads are preserved in
    {!E_unexpected}. *)
val code_of_exn : exn -> code

(** Failure counts keyed by [code_to_string], descending. *)
val histogram : t list -> (string * int) list

val pp_histogram : Format.formatter -> (string * int) list -> unit
