(* Per-pass differential oracle over the transformation pipeline.
   See oracle.mli. *)

open Augem_ir
module Pipeline = Augem_transform.Pipeline

type reason =
  | R_crash of string
  | R_type_error of string
  | R_eval_fault of string
  | R_diverged of string

type divergence = {
  div_pass : string;
  div_pass_index : int;
  div_reason : reason;
  div_before : Ast.kernel;
  div_after : Ast.kernel option;
  div_diff : string;
}

let reason_to_string = function
  | R_crash m -> "pass crashed: " ^ m
  | R_type_error m -> "output ill-typed: " ^ m
  | R_eval_fault m -> "interpreter fault: " ^ m
  | R_diverged m -> "output diverged: " ^ m

(* --- IR line diff ------------------------------------------------------- *)

(* Classic LCS over pretty-printed lines; equal runs longer than five
   lines are elided.  Kernels are small, O(n*m) is nothing. *)
let diff_lines (a : string) (b : string) : string =
  let la = Array.of_list (String.split_on_char '\n' a) in
  let lb = Array.of_list (String.split_on_char '\n' b) in
  let n = Array.length la and m = Array.length lb in
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if la.(i) = lb.(j) then 1 + lcs.(i + 1).(j + 1)
         else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let out = Buffer.create 256 in
  let equal_run = ref [] in
  let flush_equal () =
    let run = List.rev !equal_run in
    equal_run := [];
    let len = List.length run in
    if len <= 5 then
      List.iter (fun l -> Buffer.add_string out ("  " ^ l ^ "\n")) run
    else (
      List.iteri
        (fun i l ->
          if i < 2 || i >= len - 2 then
            Buffer.add_string out ("  " ^ l ^ "\n")
          else if i = 2 then
            Buffer.add_string out
              (Printf.sprintf "  ... (%d unchanged lines)\n" (len - 4)))
        run)
  in
  let rec go i j =
    if i < n && j < m && la.(i) = lb.(j) then (
      equal_run := la.(i) :: !equal_run;
      go (i + 1) (j + 1))
    else if j < m && (i = n || lcs.(i).(j + 1) >= lcs.(i + 1).(j)) then (
      flush_equal ();
      Buffer.add_string out ("+ " ^ lb.(j) ^ "\n");
      go i (j + 1))
    else if i < n then (
      flush_equal ();
      Buffer.add_string out ("- " ^ la.(i) ^ "\n");
      go (i + 1) j)
    else flush_equal ()
  in
  go 0 0;
  Buffer.contents out

let divergence_to_string d =
  Printf.sprintf
    "pass #%d \"%s\" miscompiled: %s\n--- IR before / after the pass ---\n%s"
    d.div_pass_index d.div_pass
    (reason_to_string d.div_reason)
    d.div_diff

(* --- randomized inputs -------------------------------------------------- *)

let fill seed n =
  let state = ref (seed land 0x3FFFFFFF) in
  Array.init n (fun _ ->
      state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
      (float_of_int !state /. 1073741824.0 *. 2.0) -. 1.0)

(* For single-precision kernels the inputs themselves are rounded to
   f32-representable values, so the real-arithmetic interpreter and the
   f32 machine simulation start from identical data and only accumulate
   rounding inside the computation. *)
let f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let default_inputs ?(sizes = [ 4; 7 ]) ?(seed = 19) (k : Ast.kernel) :
    Eval.arg list list =
  let single =
    Ast.fp_type_of_params k.Ast.k_params ~p_type:(fun p -> p.Ast.p_type)
    = Ast.Float
  in
  let narrow x = if single then f32 x else x in
  List.mapi
    (fun si n ->
      (* large enough for any quadratic subscript of the size params *)
      let buf_len = ((n + 4) * (n + 4)) + (4 * n) + 16 in
      List.mapi
        (fun pi (p : Ast.param) ->
          match p.Ast.p_type with
          | Ast.Int -> Eval.Aint n
          | Ast.Double | Ast.Float ->
              Eval.Adouble (narrow (1.25 +. (0.5 *. float_of_int pi)))
          | Ast.Ptr _ ->
              Eval.Abuf
                (Array.map narrow (fill (seed + (31 * si) + pi) buf_len)))
        k.Ast.k_params)
    sizes

(* --- differential check ------------------------------------------------- *)

let copy_args = List.map (function
  | Eval.Abuf b -> Eval.Abuf (Array.copy b)
  | a -> a)

let bufs_of args =
  List.filter_map (function Eval.Abuf b -> Some b | _ -> None) args

(* Run a kernel on (copies of) the argument set; the resulting buffer
   contents are the observable behaviour. *)
let run_kernel (k : Ast.kernel) (args : Eval.arg list) :
    (float array list, string) result =
  let args = copy_args args in
  match Eval.run k args with
  | _stats -> Ok (bufs_of args)
  | exception Eval.Eval_error m -> Error m

let close ~tol a b = Float.abs (a -. b) <= tol *. (1.0 +. Float.abs a +. Float.abs b)

(* First element-wise mismatch between reference and candidate buffer
   sets, if any. *)
let compare_bufs ~tol (refs : float array list) (got : float array list) :
    string option =
  let rec go bi rs gs =
    match (rs, gs) with
    | [], [] -> None
    | r :: rs', g :: gs' ->
        if Array.length r <> Array.length g then
          Some (Printf.sprintf "buffer #%d length %d vs %d" bi
                  (Array.length r) (Array.length g))
        else
          let bad = ref None in
          Array.iteri
            (fun i x ->
              if !bad = None && not (close ~tol x g.(i)) then
                bad :=
                  Some
                    (Printf.sprintf "buffer #%d element %d: expected %.12g, got %.12g"
                       bi i x g.(i)))
            r;
          (match !bad with None -> go (bi + 1) rs' gs' | some -> some)
    | _ -> Some "buffer count changed"
  in
  go 0 refs got

let check_passes ?(tol = 1e-9) ~inputs (k0 : Ast.kernel) passes :
    (Ast.kernel, divergence) result =
  let refs =
    List.map
      (fun args ->
        match run_kernel k0 args with
        | Ok bufs -> bufs
        | Error m ->
            invalid_arg
              (Printf.sprintf "Oracle.check_passes: source kernel faults: %s" m))
      inputs
  in
  let diverge idx name before after reason =
    Error
      {
        div_pass = name;
        div_pass_index = idx;
        div_reason = reason;
        div_before = before;
        div_after = after;
        div_diff =
          (match after with
          | None -> "(pass produced no output)"
          | Some k' ->
              diff_lines (Pp.kernel_to_string before) (Pp.kernel_to_string k'));
      }
  in
  let rec go idx k = function
    | [] -> Ok k
    | (name, pass) :: rest -> (
        match pass k with
        | exception exn ->
            diverge idx name k None (R_crash (Printexc.to_string exn))
        | k' -> (
            match Typecheck.check_kernel k' with
            | exception Typecheck.Type_error m ->
                diverge idx name k (Some k') (R_type_error m)
            | () ->
                let rec run_inputs inputs refs =
                  match (inputs, refs) with
                  | [], [] -> None
                  | args :: inputs', expect :: refs' -> (
                      match run_kernel k' args with
                      | Error m -> Some (R_eval_fault m)
                      | Ok got -> (
                          match compare_bufs ~tol expect got with
                          | Some m -> Some (R_diverged m)
                          | None -> run_inputs inputs' refs'))
                  | _ -> Some (R_diverged "input/reference count mismatch")
                in
                (match run_inputs inputs refs with
                | Some reason -> diverge idx name k (Some k') reason
                | None -> go (idx + 1) k' rest)))
  in
  go 0 k0 passes

let check ?tol ?inputs (k : Ast.kernel) (config : Pipeline.config) :
    (Ast.kernel, divergence) result =
  let inputs = match inputs with Some i -> i | None -> default_inputs k in
  let tol =
    match tol with
    | Some t -> t
    | None ->
        (* element-type-scaled default: single-precision kernels get the
           f32 epsilon floor, double keeps the historical 1e-9 *)
        let module Et = Augem_machine.Etype in
        let et =
          if
            Ast.fp_type_of_params k.Ast.k_params ~p_type:(fun p ->
                p.Ast.p_type)
            = Ast.Float
          then Et.F32
          else Et.F64
        in
        Et.tol et
  in
  check_passes ~tol ~inputs k (Pipeline.passes config)

let apply_checked ?tol ?inputs (k : Ast.kernel) (config : Pipeline.config) :
    (Ast.kernel, divergence) result =
  match check ?tol ?inputs k config with
  | Error _ as e -> e
  | Ok k' -> (
      (* same final obligation as Pipeline.apply *)
      match Typecheck.check_kernel k' with
      | () -> Ok k'
      | exception Typecheck.Type_error m ->
          Error
            {
              div_pass = "final-typecheck";
              div_pass_index = List.length (Pipeline.passes config);
              div_reason = R_type_error m;
              div_before = k';
              div_after = Some k';
              div_diff = "";
            })

(* --- static machine-code verification ----------------------------------- *)

(* The differential oracle above checks the IR pipeline; this runs the
   machine-code static checker (CFG + dataflow lints) on the final
   generated program, alongside the dynamic comparison the harness
   does.  A thin re-export so verification callers need only this
   module. *)
let check_static ~avx ?params (p : Augem_machine.Insn.program) :
    Augem_analysis.Asmcheck.finding list =
  let config =
    match params with
    | Some params -> Augem_analysis.Asmcheck.config_for ~avx ~params
    | None -> Augem_analysis.Asmcheck.conservative ~avx
  in
  Augem_analysis.Asmcheck.check ~config p

(* --- staged-lowering check --------------------------------------------- *)

(* End-to-end check over the staged driver: the C passes are replayed
   differentially (exactly [check]), then the whole lowering runs under
   the driver with per-stage type-checking and the static gate on the
   scheduled program armed.  On success the caller gets the full trace
   — per-stage fingerprints and counters included — so a green check
   also yields the observability artifact. *)
type lowering_failure =
  | L_divergence of divergence  (** a C pass miscompiled *)
  | L_stage of string * string
      (** a lowering stage failed: stage name, rendered error *)

let lowering_failure_to_string = function
  | L_divergence d -> divergence_to_string d
  | L_stage (stage, msg) -> Printf.sprintf "stage %s: %s" stage msg

let check_lowering ?tol ?inputs ~(arch : Augem_machine.Arch.t)
    ~(config : Augem_transform.Pipeline.config) (k : Augem_ir.Ast.kernel) :
    (Augem_driver.Trace.t, lowering_failure) result =
  match check ?tol ?inputs k config with
  | Error d -> Error (L_divergence d)
  | Ok _ -> (
      let opts =
        {
          Augem_driver.Lower.default_opts with
          Augem_driver.Lower.validate_each = true;
          lint = true;
        }
      in
      match Augem_driver.Lower.run ~opts ~arch ~config k with
      | trace -> Ok trace
      | exception Augem_driver.Lower.Stage_failed (name, exn) ->
          Error (L_stage (name, Printexc.to_string exn))
      | exception Augem_driver.Lower.Budget_exceeded { stage; len; budget } ->
          Error
            (L_stage
               (stage, Printf.sprintf "%d instructions > budget %d" len budget)))
