(* Fault injection into generated assembly programs.  See faults.mli. *)

module Insn = Augem_machine.Insn
module Reg = Augem_machine.Reg

type kind =
  | Drop_store
  | Swap_operands
  | Perturb_disp
  | Perturb_imm
  | Retarget_register
  | Flip_branch

type fault = {
  f_kind : kind;
  f_index : int;
  f_descr : string;
}

let kind_to_string = function
  | Drop_store -> "drop-store"
  | Swap_operands -> "swap-operands"
  | Perturb_disp -> "perturb-disp"
  | Perturb_imm -> "perturb-imm"
  | Retarget_register -> "retarget-register"
  | Flip_branch -> "flip-branch"

let describe f = Printf.sprintf "%s @%d (%s)" (kind_to_string f.f_kind) f.f_index f.f_descr

(* FP ops where swapping src1/src2 changes the result. *)
let non_commutative = function
  | Insn.Fsub | Insn.Fdiv -> true
  | _ -> false

(* FP ops whose source registers carry data (retargeting one is a
   semantic change; Fmov ignores src2 and Fxor is the zeroing idiom). *)
let data_op = function
  | Insn.Fadd | Insn.Fsub | Insn.Fmul | Insn.Fdiv | Insn.Fma231 -> true
  | _ -> false

let flip_cond = function
  | Insn.Clt -> Insn.Cle
  | Insn.Cle -> Insn.Clt
  | Insn.Cgt -> Insn.Cge
  | Insn.Cge -> Insn.Cgt
  | Insn.Ceq -> Insn.Cne
  | Insn.Cne -> Insn.Ceq

(* Stack-frame bookkeeping: stores to rbp/rsp-relative slots are
   callee-saved saves and scratch spills.  Their effects are invisible
   to any output-comparison oracle (a dropped callee-save only corrupts
   the caller's registers; a dropped spill reloads a zero cell, which
   at worst sends the kernel down the always-correct remainder path),
   so mutating them produces equivalent mutants that would poison the
   detection-rate metric. *)
let stack_slot (m : Insn.mem) =
  match m.Insn.base with Reg.Rbp | Reg.Rsp -> true | _ -> false

let faults_of_insn ~unobservable (idx : int) (i : Insn.t) : fault list =
  let mk kind descr = { f_kind = kind; f_index = idx; f_descr = descr } in
  match i with
  | Insn.Vstore _ -> [ mk Drop_store "vector store"; mk Perturb_disp "vector store" ]
  | Insn.Storeq (m, _) ->
      if stack_slot m then
        if unobservable then [ mk Drop_store "stack spill" ] else []
      else [ mk Drop_store "64-bit store" ]
  | Insn.Vop { op; src1; src2; _ } ->
      (if non_commutative op && src1 <> src2 then
         [ mk Swap_operands "non-commutative FP op" ]
       else [])
      @ (if data_op op then [ mk Retarget_register "FP op source" ] else [])
  | Insn.Vfma4 _ -> [ mk Retarget_register "FMA4 addend" ]
  | Insn.Vload _ -> [ mk Perturb_disp "vector load" ]
  | Insn.Vbroadcast _ -> [ mk Perturb_disp "broadcast load" ]
  | Insn.Addri (r, imm) when imm <> 0 && r <> Reg.Rsp ->
      [ mk Perturb_imm "add immediate" ]
  | Insn.Movri _ -> [ mk Perturb_imm "move immediate" ]
  | Insn.Imulri _ -> [ mk Perturb_imm "multiply immediate" ]
  | Insn.Cmpri _ -> [ mk Perturb_imm "compare immediate" ]
  | Insn.Jcc _ ->
      (* Loop-guard flips (jl/jge on the trip counter) are frequently
         equivalent mutants in this codegen idiom: the vector loop runs
         one boundary iteration more or less and the remainder loop
         silently absorbs the difference.  Only enumerated on demand. *)
      if unobservable then [ mk Flip_branch "conditional branch" ] else []
  | _ -> []

let enumerate ?(unobservable = false) (p : Insn.program) : fault list =
  List.concat (List.mapi (faults_of_insn ~unobservable) p.Insn.prog_insns)

let sample ?(seed = 0) ~max (p : Insn.program) : fault list =
  let all = enumerate p in
  let n = List.length all in
  if n <= max then all
  else
    let arr = Array.of_list all in
    (* evenly spaced, rotated by the seed: deterministic coverage of
       the whole program rather than a prefix *)
    List.init max (fun i -> arr.((seed + (i * n / max)) mod n))

let perturb_mem (m : Insn.mem) : Insn.mem = { m with Insn.disp = m.Insn.disp + 8 }

let retarget (v : Reg.vreg) : Reg.vreg = (v + 1) mod Reg.vreg_count

let mutate (f : fault) (i : Insn.t) : Insn.t =
  let stale () =
    invalid_arg
      (Printf.sprintf "Faults.apply: %s does not apply at index %d"
         (kind_to_string f.f_kind) f.f_index)
  in
  match (f.f_kind, i) with
  | Drop_store, Insn.Vstore _ | Drop_store, Insn.Storeq _ ->
      Insn.Comment (Printf.sprintf "fault: dropped store @%d" f.f_index)
  | Swap_operands, Insn.Vop ({ src1; src2; _ } as r) ->
      Insn.Vop { r with src1 = src2; src2 = src1 }
  | Perturb_disp, Insn.Vload ({ src; _ } as r) ->
      Insn.Vload { r with src = perturb_mem src }
  | Perturb_disp, Insn.Vstore ({ dst; _ } as r) ->
      Insn.Vstore { r with dst = perturb_mem dst }
  | Perturb_disp, Insn.Vbroadcast ({ src; _ } as r) ->
      Insn.Vbroadcast { r with src = perturb_mem src }
  | Perturb_imm, Insn.Addri (r, imm) -> Insn.Addri (r, imm + 8)
  | Perturb_imm, Insn.Movri (r, v) -> Insn.Movri (r, v + 1)
  | Perturb_imm, Insn.Imulri (d, s, imm) -> Insn.Imulri (d, s, imm + 1)
  | Perturb_imm, Insn.Cmpri (r, imm) -> Insn.Cmpri (r, imm + 8)
  | Retarget_register, Insn.Vop ({ src2; _ } as r) ->
      Insn.Vop { r with src2 = retarget src2 }
  | Retarget_register, Insn.Vfma4 ({ c; _ } as r) ->
      Insn.Vfma4 { r with c = retarget c }
  | Flip_branch, Insn.Jcc (c, l) -> Insn.Jcc (flip_cond c, l)
  | _ -> stale ()

let apply (p : Insn.program) (f : fault) : Insn.program =
  if f.f_index < 0 || f.f_index >= List.length p.Insn.prog_insns then
    invalid_arg "Faults.apply: index out of range";
  {
    p with
    Insn.prog_insns =
      List.mapi
        (fun idx i -> if idx = f.f_index then mutate f i else i)
        p.Insn.prog_insns;
  }
