(* Fault injection into generated assembly programs.  See faults.mli. *)

module Insn = Augem_machine.Insn
module Reg = Augem_machine.Reg

type kind =
  | Drop_store
  | Swap_operands
  | Perturb_disp
  | Perturb_imm
  | Retarget_register
  | Flip_branch
  (* asm-level classes, statically detectable by construction: the
     meta-test for the static checker (Asmcheck), mirroring what the
     dynamic classes above are to the execution harness *)
  | Asm_drop_save
  | Asm_drop_restore
  | Asm_drop_push
  | Asm_drop_pop
  | Asm_drop_zeroing
  | Asm_drop_vzeroupper
  | Asm_retarget_jump
  | Asm_clobber_callee_saved
  | Asm_swap_sse

type fault = {
  f_kind : kind;
  f_index : int;
  f_descr : string;
  f_arg : int option;
}

let kind_to_string = function
  | Drop_store -> "drop-store"
  | Swap_operands -> "swap-operands"
  | Perturb_disp -> "perturb-disp"
  | Perturb_imm -> "perturb-imm"
  | Retarget_register -> "retarget-register"
  | Flip_branch -> "flip-branch"
  | Asm_drop_save -> "asm-drop-save"
  | Asm_drop_restore -> "asm-drop-restore"
  | Asm_drop_push -> "asm-drop-push"
  | Asm_drop_pop -> "asm-drop-pop"
  | Asm_drop_zeroing -> "asm-drop-zeroing"
  | Asm_drop_vzeroupper -> "asm-drop-vzeroupper"
  | Asm_retarget_jump -> "asm-retarget-jump"
  | Asm_clobber_callee_saved -> "asm-clobber-callee-saved"
  | Asm_swap_sse -> "asm-swap-sse"

let describe f = Printf.sprintf "%s @%d (%s)" (kind_to_string f.f_kind) f.f_index f.f_descr

(* FP ops where swapping src1/src2 changes the result. *)
let non_commutative = function
  | Insn.Fsub | Insn.Fdiv -> true
  | _ -> false

(* FP ops whose source registers carry data (retargeting one is a
   semantic change; Fmov ignores src2 and Fxor is the zeroing idiom). *)
let data_op = function
  | Insn.Fadd | Insn.Fsub | Insn.Fmul | Insn.Fdiv | Insn.Fma231 -> true
  | _ -> false

let flip_cond = function
  | Insn.Clt -> Insn.Cle
  | Insn.Cle -> Insn.Clt
  | Insn.Cgt -> Insn.Cge
  | Insn.Cge -> Insn.Cgt
  | Insn.Ceq -> Insn.Cne
  | Insn.Cne -> Insn.Ceq

(* Stack-frame bookkeeping: stores to rbp/rsp-relative slots are
   callee-saved saves and scratch spills.  Their effects are invisible
   to any output-comparison oracle (a dropped callee-save only corrupts
   the caller's registers; a dropped spill reloads a zero cell, which
   at worst sends the kernel down the always-correct remainder path),
   so mutating them produces equivalent mutants that would poison the
   detection-rate metric. *)
let stack_slot (m : Insn.mem) =
  match m.Insn.base with Reg.Rbp | Reg.Rsp -> true | _ -> false

let faults_of_insn ~unobservable (idx : int) (i : Insn.t) : fault list =
  let mk kind descr =
    { f_kind = kind; f_index = idx; f_descr = descr; f_arg = None }
  in
  match i with
  | Insn.Vstore _ -> [ mk Drop_store "vector store"; mk Perturb_disp "vector store" ]
  | Insn.Storeq (m, _) ->
      if stack_slot m then
        if unobservable then [ mk Drop_store "stack spill" ] else []
      else [ mk Drop_store "64-bit store" ]
  | Insn.Vop { op; src1; src2; _ } ->
      (if non_commutative op && src1 <> src2 then
         [ mk Swap_operands "non-commutative FP op" ]
       else [])
      @ (if data_op op then [ mk Retarget_register "FP op source" ] else [])
  | Insn.Vfma4 _ -> [ mk Retarget_register "FMA4 addend" ]
  | Insn.Vload _ -> [ mk Perturb_disp "vector load" ]
  | Insn.Vbroadcast _ -> [ mk Perturb_disp "broadcast load" ]
  | Insn.Addri (r, imm) when imm <> 0 && r <> Reg.Rsp ->
      [ mk Perturb_imm "add immediate" ]
  | Insn.Movri _ -> [ mk Perturb_imm "move immediate" ]
  | Insn.Imulri _ -> [ mk Perturb_imm "multiply immediate" ]
  | Insn.Cmpri _ -> [ mk Perturb_imm "compare immediate" ]
  | Insn.Jcc _ ->
      (* Loop-guard flips (jl/jge on the trip counter) are frequently
         equivalent mutants in this codegen idiom: the vector loop runs
         one boundary iteration more or less and the remainder loop
         silently absorbs the difference.  Only enumerated on demand. *)
      if unobservable then [ mk Flip_branch "conditional branch" ] else []
  | _ -> []

let enumerate ?(unobservable = false) (p : Insn.program) : fault list =
  List.concat (List.mapi (faults_of_insn ~unobservable) p.Insn.prog_insns)

let sample ?(seed = 0) ~max (p : Insn.program) : fault list =
  let all = enumerate p in
  let n = List.length all in
  if n <= max then all
  else
    let arr = Array.of_list all in
    (* evenly spaced, rotated by the seed: deterministic coverage of
       the whole program rather than a prefix *)
    List.init max (fun i -> arr.((seed + (i * n / max)) mod n))

(* --- asm-level faults: the static checker's meta-test -------------- *)

(* Unlike the dynamic classes, every asm-level fault is chosen so that
   a sound static checker MUST flag the mutant: dropped callee-saves /
   restores / push / pop break the ABI contract on some path, a
   retargeted jump names a label that does not exist, a clobbered
   never-touched callee-saved register has no saved copy, a dropped
   zeroing leaves a read of an undefined register, a dropped
   vzeroupper leaves dirty 256-bit state at ret, and a swapped SSE
   operand pair violates the two-operand encoding invariant. *)

let chaos_label = ".Lasm_chaos_undefined"
let is_callee_saved g = List.mem g Reg.callee_saved

let gpr_written (i : Insn.t) (g : Reg.gpr) =
  List.exists (function Reg.Gp g' -> g' = g | Reg.Vr _ -> false)
    (Insn.writes i)

(* a callee-saved register the program never touches: the target for
   Asm_clobber_callee_saved (clobbering it is unconditionally an ABI
   violation, since nothing can have saved it) *)
let untouched_callee_saved (insns : Insn.t array) : Reg.gpr option =
  List.find_opt
    (fun g ->
      not
        (Array.exists
           (fun i ->
             gpr_written i g
             || match i with
                | Insn.Push r | Insn.Storeq (_, r) -> r = g
                | _ -> false)
           insns))
    Reg.callee_saved

let zeroing_idiom = function
  | Insn.Vop { op = Insn.Fxor; dst; src1; src2; _ } when src1 = src2 ->
      Some dst
  | _ -> None

let writes_vreg (i : Insn.t) (v : Reg.vreg) =
  List.exists (function Reg.Vr v' -> v' = v | Reg.Gp _ -> false)
    (Insn.writes i)

let reads_vreg (i : Insn.t) (v : Reg.vreg) =
  List.exists (function Reg.Vr v' -> v' = v | Reg.Gp _ -> false)
    (Insn.reads i)

let writes_256 = function
  | Insn.Vop { w = Insn.W256; _ }
  | Insn.Vfma4 { w = Insn.W256; _ }
  | Insn.Vload { w = Insn.W256; _ }
  | Insn.Vbroadcast { w = Insn.W256; _ }
  | Insn.Vshuf { w = Insn.W256; _ }
  | Insn.Vblend { w = Insn.W256; _ }
  | Insn.Vperm128 _ ->
      true
  | _ -> false

let enumerate_asm ?(avx = true) ?(entry = []) (p : Insn.program) : fault list
    =
  let insns = Array.of_list p.Insn.prog_insns in
  let n = Array.length insns in
  let mk kind idx descr arg =
    { f_kind = kind; f_index = idx; f_descr = descr; f_arg = arg }
  in
  let exists_in lo hi f =
    let rec go i = i <= hi && i < n && (f insns.(i) || go (i + 1)) in
    go (max lo 0)
  in
  let find_in lo hi f =
    let rec go i =
      if i > hi || i >= n then None
      else if f insns.(i) then Some i
      else go (i + 1)
    in
    go (max lo 0)
  in
  (* every site the stack tracker records as a saved copy of a
     callee-saved register *)
  let is_save r = function
    | Insn.Storeq (m, r') -> r' = r && stack_slot m
    | Insn.Push r' -> r' = r
    | _ -> false
  in
  let save_sites =
    List.concat_map
      (fun r ->
        Array.to_list insns
        |> List.mapi (fun j x -> (j, x))
        |> List.filter_map (fun (j, x) ->
               if is_save r x then Some (r, j) else None))
      Reg.callee_saved
  in
  (* syntactic identity of an 8-byte frame cell: rbp-relative,
     non-indexed, below the frame base *)
  let writes_cell (m : Insn.mem) = function
    | Insn.Storeq (m', _) ->
        m'.Insn.base = m.Insn.base && m'.Insn.disp = m.Insn.disp
        && m'.Insn.index = None
    | Insn.Vstore { w; dst = m'; _ } ->
        m'.Insn.base = m.Insn.base && m'.Insn.index = None
        && m'.Insn.disp <= m.Insn.disp
        && m.Insn.disp < m'.Insn.disp + (Insn.width_bits w / 8)
    | _ -> false
  in
  let reads_cell (m : Insn.mem) = function
    | Insn.Loadq (_, m') ->
        m'.Insn.base = m.Insn.base && m'.Insn.disp = m.Insn.disp
        && m'.Insn.index = None
    | _ -> false
  in
  let clobber_target = untouched_callee_saved insns in
  (* the last stack reload of each callee-saved register is its
     epilogue restore: dropping it leaves the register unrestored on
     the path to ret *)
  let last_restore = Hashtbl.create 8 in
  Array.iteri
    (fun idx i ->
      match i with
      | Insn.Loadq (r, m) when stack_slot m && is_callee_saved r ->
          Hashtbl.replace last_restore r idx
      | _ -> ())
    insns;
  let entry_vregs =
    List.filter_map (function Reg.Vr v -> Some v | Reg.Gp _ -> None) entry
  in
  let out = ref [] in
  let add f = out := f :: !out in
  Array.iteri
    (fun idx i ->
      (match i with
      | Insn.Storeq (m, r) when stack_slot m && is_callee_saved r ->
          (* Dropping this store is statically detectable iff either
             (a) it is the only write to its frame cell and the cell is
             reloaded later (the reload then reads an uninitialized
             slot), or (b) a write to [r] follows before any other
             saved copy of [r] exists (the write then clobbers a
             callee-saved register with no saved copy).  Sites meeting
             neither are equivalent mutants for a static checker and
             are skipped. *)
          let reload_detectable =
            m.Insn.index = None
            && m.Insn.base = Reg.Rbp && m.Insn.disp < 0
            && (not
                  (exists_in 0 (idx - 1) (writes_cell m)
                  || exists_in (idx + 1) (n - 1) (writes_cell m)))
            && exists_in (idx + 1) (n - 1) (reads_cell m)
          in
          let clobber_detectable =
            match
              find_in (idx + 1) (n - 1) (fun x -> gpr_written x r)
            with
            | Some jw ->
                not
                  (List.exists
                     (fun (r', js) -> r' = r && js <> idx && js < jw)
                     save_sites)
            | None -> false
          in
          if reload_detectable || clobber_detectable then
            add
              (mk Asm_drop_save idx
                 ("save of %" ^ Reg.gpr_name r)
                 (Some (Reg.gpr_index r)))
      | Insn.Loadq (r, m)
        when stack_slot m && is_callee_saved r
             && Hashtbl.find_opt last_restore r = Some idx
             && exists_in 0 (idx - 1) (fun j -> gpr_written j r) ->
          add
            (mk Asm_drop_restore idx
               ("restore of %" ^ Reg.gpr_name r)
               (Some (Reg.gpr_index r)))
      | Insn.Push r ->
          add (mk Asm_drop_push idx ("push %" ^ Reg.gpr_name r) None)
      | Insn.Pop r ->
          add (mk Asm_drop_pop idx ("pop %" ^ Reg.gpr_name r) None)
      | Insn.Vzeroupper when exists_in 0 (idx - 1) writes_256 ->
          add (mk Asm_drop_vzeroupper idx "vzeroupper" None)
      | Insn.Jmp _ -> add (mk Asm_retarget_jump idx "unconditional jump" None)
      | Insn.Jcc _ -> add (mk Asm_retarget_jump idx "conditional jump" None)
      | _ -> ());
      (match zeroing_idiom i with
      | Some dst
        when (not (List.mem dst entry_vregs))
             && (not (exists_in 0 (idx - 1) (fun j -> writes_vreg j dst)))
             && exists_in (idx + 1) (n - 1) (fun j -> reads_vreg j dst) ->
          add
            (mk Asm_drop_zeroing idx
               (Printf.sprintf "zeroing of %%xmm%d" dst)
               None)
      | _ -> ());
      (match (clobber_target, i) with
      | ( Some g,
          ( Insn.Movri _ | Insn.Movrr _ | Insn.Loadq _ | Insn.Lea _
          | Insn.Addri _ | Insn.Subri _ ) ) ->
          add
            (mk Asm_clobber_callee_saved idx
               ("retarget destination to %" ^ Reg.gpr_name g)
               (Some (Reg.gpr_index g)))
      | _ -> ());
      if not avx then
        match i with
        | Insn.Vop { op; dst; src1; src2; _ }
          when dst = src1 && src1 <> src2 && op <> Insn.Fmov
               && op <> Insn.Fma231 ->
            add (mk Asm_swap_sse idx "SSE two-operand FP op" None)
        | _ -> ())
    insns;
  List.rev !out

let sample_asm ?(seed = 0) ?(avx = true) ?(entry = []) ~max
    (p : Insn.program) : fault list =
  let all = enumerate_asm ~avx ~entry p in
  let n = List.length all in
  if n <= max then all
  else
    let arr = Array.of_list all in
    List.init max (fun i -> arr.((seed + (i * n / max)) mod n))

let perturb_mem (m : Insn.mem) : Insn.mem = { m with Insn.disp = m.Insn.disp + 8 }

let retarget (v : Reg.vreg) : Reg.vreg = (v + 1) mod Reg.vreg_count

let mutate (f : fault) (i : Insn.t) : Insn.t =
  let stale () =
    invalid_arg
      (Printf.sprintf "Faults.apply: %s does not apply at index %d"
         (kind_to_string f.f_kind) f.f_index)
  in
  match (f.f_kind, i) with
  | Drop_store, Insn.Vstore _ | Drop_store, Insn.Storeq _ ->
      Insn.Comment (Printf.sprintf "fault: dropped store @%d" f.f_index)
  | Swap_operands, Insn.Vop ({ src1; src2; _ } as r) ->
      Insn.Vop { r with src1 = src2; src2 = src1 }
  | Perturb_disp, Insn.Vload ({ src; _ } as r) ->
      Insn.Vload { r with src = perturb_mem src }
  | Perturb_disp, Insn.Vstore ({ dst; _ } as r) ->
      Insn.Vstore { r with dst = perturb_mem dst }
  | Perturb_disp, Insn.Vbroadcast ({ src; _ } as r) ->
      Insn.Vbroadcast { r with src = perturb_mem src }
  | Perturb_imm, Insn.Addri (r, imm) -> Insn.Addri (r, imm + 8)
  | Perturb_imm, Insn.Movri (r, v) -> Insn.Movri (r, v + 1)
  | Perturb_imm, Insn.Imulri (d, s, imm) -> Insn.Imulri (d, s, imm + 1)
  | Perturb_imm, Insn.Cmpri (r, imm) -> Insn.Cmpri (r, imm + 8)
  | Retarget_register, Insn.Vop ({ src2; _ } as r) ->
      Insn.Vop { r with src2 = retarget src2 }
  | Retarget_register, Insn.Vfma4 ({ c; _ } as r) ->
      Insn.Vfma4 { r with c = retarget c }
  | Flip_branch, Insn.Jcc (c, l) -> Insn.Jcc (flip_cond c, l)
  | Asm_drop_save, Insn.Storeq _ ->
      Insn.Comment (Printf.sprintf "asm-fault: dropped callee-save @%d" f.f_index)
  | Asm_drop_restore, Insn.Loadq _ ->
      Insn.Comment (Printf.sprintf "asm-fault: dropped restore @%d" f.f_index)
  | Asm_drop_push, Insn.Push _ ->
      Insn.Comment (Printf.sprintf "asm-fault: dropped push @%d" f.f_index)
  | Asm_drop_pop, Insn.Pop _ ->
      Insn.Comment (Printf.sprintf "asm-fault: dropped pop @%d" f.f_index)
  | Asm_drop_zeroing, Insn.Vop _ ->
      Insn.Comment (Printf.sprintf "asm-fault: dropped zeroing @%d" f.f_index)
  | Asm_drop_vzeroupper, Insn.Vzeroupper ->
      Insn.Comment (Printf.sprintf "asm-fault: dropped vzeroupper @%d" f.f_index)
  | Asm_retarget_jump, Insn.Jmp _ -> Insn.Jmp chaos_label
  | Asm_retarget_jump, Insn.Jcc (c, _) -> Insn.Jcc (c, chaos_label)
  | Asm_clobber_callee_saved, i -> (
      let g =
        match f.f_arg with
        | Some gi -> List.nth Reg.all_gprs gi
        | None -> stale ()
      in
      match i with
      | Insn.Movri (_, v) -> Insn.Movri (g, v)
      | Insn.Movrr (_, s) -> Insn.Movrr (g, s)
      | Insn.Loadq (_, m) -> Insn.Loadq (g, m)
      | Insn.Lea (_, m) -> Insn.Lea (g, m)
      | Insn.Addri (_, v) -> Insn.Addri (g, v)
      | Insn.Subri (_, v) -> Insn.Subri (g, v)
      | _ -> stale ())
  | Asm_swap_sse, Insn.Vop ({ src1; src2; _ } as r) ->
      Insn.Vop { r with src1 = src2; src2 = src1 }
  | _ -> stale ()

let apply (p : Insn.program) (f : fault) : Insn.program =
  if f.f_index < 0 || f.f_index >= List.length p.Insn.prog_insns then
    invalid_arg "Faults.apply: index out of range";
  {
    p with
    Insn.prog_insns =
      List.mapi
        (fun idx i -> if idx = f.f_index then mutate f i else i)
        p.Insn.prog_insns;
  }
