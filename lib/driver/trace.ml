(* The record a staged lowering leaves behind: one [stage_record] per
   stage (name, artifact kind, wall time, fingerprint, size counters,
   optional snapshot) plus the final artifacts the callers need.  The
   tuner reads stage names out of failures, `augem explain` renders the
   whole trace, and the determinism suite compares two traces
   field-by-field (timings excluded). *)

open Augem_ir
open Augem_machine
open Augem_templates

type stage_record = {
  sr_index : int;  (** position in the stage list, 0-based *)
  sr_name : string;
  sr_kind : string;  (** artifact kind, see {!Stage.kind} *)
  sr_ms : float;  (** wall-clock milliseconds for run + validate *)
  sr_fingerprint : string;
  sr_stats : (string * int) list;  (** artifact-size counters *)
  sr_artifact : string option;  (** snapshot, when requested *)
}

type t = {
  tr_kernel : string;  (** kernel (function) name *)
  tr_arch : string;  (** architecture name *)
  tr_et : Etype.t;  (** scalar precision the lowering ran under *)
  tr_config : string option;
      (** rendered tuning configuration; [None] for backend-only runs *)
  tr_stages : stage_record list;  (** in execution order *)
  tr_optimized : Ast.kernel option;
      (** after the last C pass; [None] for backend-only runs *)
  tr_annotated : Matcher.akernel;
  tr_program : Insn.program;  (** the final program *)
}

let program (t : t) : Insn.program = t.tr_program
let annotated (t : t) : Matcher.akernel = t.tr_annotated
let optimized (t : t) : Ast.kernel option = t.tr_optimized
let stage_names (t : t) : string list = List.map (fun r -> r.sr_name) t.tr_stages
