(* The staged-lowering driver: builds the full stage list for a kernel
   — the configured C passes, template identification, vectorization
   planning, parameter binding, body emission, frame emission, and
   (optionally) scheduling — and folds it, recording a
   {!Trace.stage_record} per stage.  One entry point, [run], is what
   the tuner, the oracle and the CLI call; [run_annotated] is the
   backend-only variant the [Emit] compatibility wrappers use.

   Behaviour is bit-for-bit identical to the pre-refactor monolith:
   the stages execute exactly the statements the old
   [Emit.generate_annotated] executed, in the same order. *)

open Augem_ir
open Augem_machine
open Augem_templates
open Augem_transform
open Augem_codegen
module M = Matcher

type opts = {
  prefer : Plan.prefer;
  max_width : Insn.vwidth option;  (** cap vector width (None = machine) *)
  validate_each : bool;
      (** type-check after every C pass, not only the last *)
  snapshots : bool;  (** record each stage's rendered artifact *)
  max_insns : int option;
      (** instruction budget, checked on the unscheduled program *)
  lint : bool;  (** static-check the scheduled program; errors fail *)
  schedule : bool;  (** run the list scheduler as a final stage *)
}

let default_opts =
  {
    prefer = Plan.Prefer_auto;
    max_width = None;
    validate_each = false;
    snapshots = false;
    max_insns = None;
    lint = false;
    schedule = true;
  }

(* A stage's [run] or [validate] raised: the stage name is the
   attribution the tuner's diagnostics record. *)
exception Stage_failed of string * exn

(* The unscheduled program blew the instruction budget (tuner sweeps
   discard such candidates before the length-proportional analyses). *)
exception Budget_exceeded of { stage : string; len : int; budget : int }

let () =
  Printexc.register_printer (function
    | Stage_failed (name, exn) ->
        Some (Printf.sprintf "stage %s: %s" name (Printexc.to_string exn))
    | Budget_exceeded { stage; len; budget } ->
        Some
          (Printf.sprintf "stage %s: %d instructions > budget %d" stage len
             budget)
    | _ -> None)

(* The element type of a kernel, read off its parameter list (kernels
   are monomorphic in their FP type). *)
let etype_of_params (params : Ast.param list) : Etype.t =
  match Ast.fp_type_of_params params ~p_type:(fun p -> p.Ast.p_type) with
  | Ast.Float -> Etype.F32
  | _ -> Etype.F64

let machine_lanes (opts : opts) (arch : Arch.t) ~(et : Etype.t) =
  let base = Arch.simd_lanes ~et arch in
  match opts.max_width with
  | None -> base
  | Some w -> min base (Insn.lanes_of et w)

(* --- stage construction ------------------------------------------------ *)

let typecheck_artifact = function
  | Stage.A_kernel k -> Typecheck.check_kernel k
  | _ -> ()

(* The C-level stages: one per configured source pass, each validated
   by the type checker when [validate_each] (always on the last, which
   preserves [Pipeline.apply]'s contract). *)
let c_stages (opts : opts) (config : Pipeline.config) : Stage.t list =
  let passes = Pipeline.passes config in
  let last = List.length passes - 1 in
  List.mapi
    (fun i (name, pass) ->
      {
        Stage.name;
        run =
          (function
          | Stage.A_kernel k -> Stage.A_kernel (pass k)
          | a -> a);
        validate =
          (if opts.validate_each || i = last then Some typecheck_artifact
           else None);
      })
    passes

(* The tuner's static gate on the scheduled program: any error-severity
   finding fails the stage (and so the candidate). *)
let lint_validator (arch : Arch.t) ~(params : Ast.param list) :
    Stage.artifact -> unit = function
  | Stage.A_program p -> (
      let module AC = Augem_analysis.Asmcheck in
      let config = AC.config_for ~avx:(arch.Arch.simd = Arch.AVX) ~params in
      match AC.errors (AC.check ~config p) with
      | [] -> ()
      | errs -> raise (AC.Lint_error ("asmcheck", errs)))
  | _ -> ()

(* The backend stages, mirroring the old [Emit.generate_annotated]
   step for step.  [params] is the kernel's parameter list (invariant
   across the pipeline), needed by the lint gate's checker config. *)
let backend_stages (opts : opts) (arch : Arch.t) ~(params : Ast.param list) :
    Stage.t list =
  let et = etype_of_params params in
  let lanes = machine_lanes opts arch ~et in
  let stage name run = { Stage.name; run; validate = None } in
  [
    stage "identify-templates" (function
      | Stage.A_kernel k -> Stage.A_annotated (M.identify k)
      | a -> a);
    stage "plan-vectorization" (function
      | Stage.A_annotated ak ->
          Stage.A_plan
            {
              Stage.pl_ak = ak;
              pl_plan = Plan.build ~et ~machine_lanes:lanes ~prefer:opts.prefer ak;
              pl_lanes = lanes;
            }
      | a -> a);
    stage "bind-parameters" (function
      | Stage.A_plan p ->
          Stage.A_state
            {
              Stage.bd_plan = p;
              bd_st =
                Frame.create_state ~arch ~plan:p.Stage.pl_plan p.Stage.pl_ak;
            }
      | a -> a);
    stage "emit-body" (function
      | Stage.A_state b ->
          Control.emit_astmts b.Stage.bd_st
            b.Stage.bd_plan.Stage.pl_ak.M.ak_body;
          Stage.A_body
            {
              Stage.em_ak = b.Stage.bd_plan.Stage.pl_ak;
              em_st = b.Stage.bd_st;
              em_insns = Frame.body b.Stage.bd_st;
            }
      | a -> a);
    stage "emit-frame" (function
      | Stage.A_body b ->
          Stage.A_program
            (Frame.finish b.Stage.em_st b.Stage.em_ak ~body:b.Stage.em_insns)
      | a -> a);
  ]
  @
  if not opts.schedule then []
  else
    [
      {
        Stage.name = "schedule";
        run =
          (function
          | Stage.A_program p -> Stage.A_program (Schedule.run arch p)
          | a -> a);
        validate =
          (if opts.lint then Some (lint_validator arch ~params) else None);
      };
    ]

(* --- the fold ----------------------------------------------------------- *)

(* Fold a stage list, timing and recording each stage.  Returns the
   records and every stage's output artifact, both in execution
   order. *)
let run_stages ~(avx : bool) ~(et : Etype.t) ~(opts : opts) ~(idx0 : int)
    (stages : Stage.t list) (init : Stage.artifact) :
    Trace.stage_record list * Stage.artifact list =
  let records = ref [] in
  let arts = ref [] in
  let _ =
    List.fold_left
      (fun (idx, art) (st : Stage.t) ->
        let t0 = Unix.gettimeofday () in
        let art' =
          try st.Stage.run art
          with exn -> raise (Stage_failed (st.Stage.name, exn))
        in
        (match st.Stage.validate with
        | None -> ()
        | Some v -> (
            try v art' with exn -> raise (Stage_failed (st.Stage.name, exn))));
        let ms = (Unix.gettimeofday () -. t0) *. 1000. in
        (* the instruction budget applies to the unscheduled program *)
        (match art' with
        | Stage.A_program p when String.equal st.Stage.name "emit-frame" -> (
            match opts.max_insns with
            | Some budget ->
                let len = List.length p.Insn.prog_insns in
                if len > budget then
                  raise
                    (Budget_exceeded { stage = st.Stage.name; len; budget })
            | None -> ())
        | _ -> ());
        records :=
          {
            Trace.sr_index = idx;
            sr_name = st.Stage.name;
            sr_kind = Stage.kind art';
            sr_ms = ms;
            sr_fingerprint = Stage.fingerprint ~et ~avx art';
            sr_stats = Stage.stats art';
            sr_artifact =
              (if opts.snapshots then Some (Stage.to_string ~et ~avx art')
               else None);
          }
          :: !records;
        arts := art' :: !arts;
        (idx + 1, art'))
      (idx0, init) stages
  in
  (List.rev !records, List.rev !arts)

let final_program (arts : Stage.artifact list) ~(who : string) : Insn.program =
  match List.rev arts with
  | Stage.A_program p :: _ -> p
  | _ -> invalid_arg (who ^ ": lowering produced no program")

(* --- entry points ------------------------------------------------------- *)

(* Backend-only lowering: from a template-annotated kernel to a
   program, exactly the old [Emit.generate_annotated] (plus optional
   scheduling).  Used by the [Emit] compatibility wrappers. *)
let run_annotated ?(opts = default_opts) ~(arch : Arch.t) (ak : M.akernel) :
    Trace.t =
  let avx = arch.Arch.simd = Arch.AVX in
  let et = etype_of_params ak.M.ak_params in
  let stages =
    (* skip identify-templates: the input is already annotated *)
    List.filter
      (fun s -> not (String.equal s.Stage.name "identify-templates"))
      (backend_stages opts arch ~params:ak.M.ak_params)
  in
  let records, arts =
    run_stages ~avx ~et ~opts ~idx0:0 stages (Stage.A_annotated ak)
  in
  {
    Trace.tr_kernel = ak.M.ak_name;
    tr_arch = arch.Arch.name;
    tr_et = et;
    tr_config = None;
    tr_stages = records;
    tr_optimized = None;
    tr_annotated = ak;
    tr_program = final_program arts ~who:"Lower.run_annotated";
  }

(* The single full-pipeline entry point: C passes, template
   identification, the backend, optional scheduling and lint. *)
let run ?(opts = default_opts) ~(arch : Arch.t) ~(config : Pipeline.config)
    (kernel : Ast.kernel) : Trace.t =
  let avx = arch.Arch.simd = Arch.AVX in
  let et = etype_of_params kernel.Ast.k_params in
  let stages =
    c_stages opts config @ backend_stages opts arch ~params:kernel.Ast.k_params
  in
  let records, arts =
    run_stages ~avx ~et ~opts ~idx0:0 stages (Stage.A_kernel kernel)
  in
  let optimized =
    List.fold_left
      (fun acc -> function Stage.A_kernel k -> Some k | _ -> acc)
      None arts
  in
  let annotated =
    match
      List.find_opt (function Stage.A_annotated _ -> true | _ -> false) arts
    with
    | Some (Stage.A_annotated ak) -> ak
    | _ -> invalid_arg "Lower.run: lowering skipped template identification"
  in
  {
    Trace.tr_kernel = kernel.Ast.k_name;
    tr_arch = arch.Arch.name;
    tr_et = et;
    tr_config = Some (Pipeline.config_to_string config);
    tr_stages = records;
    tr_optimized = optimized;
    tr_annotated = annotated;
    tr_program = final_program arts ~who:"Lower.run";
  }
