(* The staged-lowering protocol: every layer of the pipeline — from the
   source-to-source C passes down to the scheduled assembly — is a
   [Stage.t] mapping one [artifact] to the next.  The driver ([Lower])
   folds a stage list, and because every intermediate artifact is a
   first-class value it can be fingerprinted, size-counted,
   pretty-printed and validated uniformly.  This reifies the paper's
   Figure 2 flow (C optimizer → template identifier → template
   optimizer → assembly generator) as data rather than as the call
   graph of a monolith. *)

open Augem_ir
open Augem_machine
open Augem_templates
open Augem_codegen
module M = Matcher

(* Every representation a kernel passes through on the way from simple
   C to scheduled assembly.  The mid-backend artifacts carry the live
   emitter state ([Translate.state]): the backend stages communicate
   through it, and its pretty-printing reads only what has been emitted
   at snapshot time. *)
type artifact =
  | A_kernel of Ast.kernel  (** C, before/after a source pass *)
  | A_annotated of M.akernel  (** template-annotated C *)
  | A_plan of plan  (** vectorization plan, pre-emission *)
  | A_state of bound  (** emitter state after parameter binding *)
  | A_body of body  (** emitted body, pre-frame *)
  | A_program of Insn.program  (** complete program *)

and plan = { pl_ak : M.akernel; pl_plan : Plan.t; pl_lanes : int }
and bound = { bd_plan : plan; bd_st : Translate.state }

and body = {
  em_ak : M.akernel;
  em_st : Translate.state;
  em_insns : Insn.t list;
}

type t = {
  name : string;  (** unique within a stage list, e.g. "emit-body" *)
  run : artifact -> artifact;
  validate : (artifact -> unit) option;
      (** checked on the stage's output; raises on failure *)
}

let kind = function
  | A_kernel _ -> "c-kernel"
  | A_annotated _ -> "annotated-c"
  | A_plan _ -> "vector-plan"
  | A_state _ -> "emitter-state"
  | A_body _ -> "insn-list"
  | A_program _ -> "program"

(* --- size counters ----------------------------------------------------- *)

let rec count_stmts = function
  | [] -> 0
  | (Ast.Decl _ | Ast.Assign _ | Ast.Prefetch _ | Ast.Comment _) :: rest ->
      1 + count_stmts rest
  | Ast.For (_, body) :: rest -> 1 + count_stmts body + count_stmts rest
  | Ast.If (_, _, _, t, f) :: rest ->
      1 + count_stmts t + count_stmts f + count_stmts rest
  | Ast.Tagged (_, body) :: rest -> count_stmts body + count_stmts rest

let rec count_astmts = function
  | [] -> (0, 0)
  | M.A_plain _ :: rest ->
      let s, r = count_astmts rest in
      (s + 1, r)
  | M.A_region _ :: rest ->
      let s, r = count_astmts rest in
      (s, r + 1)
  | M.A_for (_, body) :: rest ->
      let s1, r1 = count_astmts body and s2, r2 = count_astmts rest in
      (s1 + s2 + 1, r1 + r2)
  | M.A_if (_, _, _, t, f) :: rest ->
      let s1, r1 = count_astmts t
      and s2, r2 = count_astmts f
      and s3, r3 = count_astmts rest in
      (s1 + s2 + s3 + 1, r1 + r2 + r3)

let plan_stats (p : plan) =
  [
    ("groups", List.length (Plan.groups p.pl_plan));
    ("splats", List.length (Plan.splat_vars p.pl_plan));
    ("lanes", p.pl_lanes);
  ]

(* What has been emitted into the state's output stream so far, in
   program order. *)
let emitted_so_far (st : Translate.state) : Insn.t list =
  List.rev !(st.Translate.ctx.Ctx.out)

let stats = function
  | A_kernel k -> [ ("stmts", count_stmts k.Ast.k_body) ]
  | A_annotated ak ->
      let s, r = count_astmts ak.M.ak_body in
      [ ("stmts", s); ("regions", r) ]
  | A_plan p -> plan_stats p
  | A_state b ->
      plan_stats b.bd_plan
      @ [ ("prelude-insns", List.length (emitted_so_far b.bd_st)) ]
  | A_body b -> [ ("insns", List.length b.em_insns) ]
  | A_program p -> [ ("insns", List.length p.Insn.prog_insns) ]

(* --- rendering --------------------------------------------------------- *)

let insns_to_string ?(et = Etype.F64) ~avx insns =
  insns |> List.map (Att.insn_str ~et ~avx) |> String.concat "\n"

let plan_to_string (p : plan) =
  Printf.sprintf "machine lanes: %d\n%s" p.pl_lanes (Plan.to_string p.pl_plan)

let to_string ?(et = Etype.F64) ~avx = function
  | A_kernel k -> Pp.kernel_to_string k
  | A_annotated ak -> Pp.kernel_to_string (M.to_tagged_kernel ak)
  | A_plan p -> plan_to_string p
  | A_state b ->
      plan_to_string b.bd_plan
      ^ "prelude:\n"
      ^ insns_to_string ~et ~avx (emitted_so_far b.bd_st)
      ^ "\n"
  | A_body b -> insns_to_string ~et ~avx b.em_insns ^ "\n"
  | A_program p -> Att.program_to_string ~avx ~et p

(* Content fingerprint of an artifact: stable across runs for the same
   input, sensitive to any rendered difference.  The determinism suite
   asserts these match between repeated lowerings. *)
let fingerprint ?(et = Etype.F64) ~avx (a : artifact) : string =
  Digest.to_hex (Digest.string (kind a ^ "\n" ^ to_string ~et ~avx a))
