(* Back-compatible [Emit] API over the staged-lowering driver.  The
   historical entry points of the assembly generator — unscheduled
   generation from low-level C or from an annotated kernel — are thin
   wrappers over {!Lower.run_annotated}; exceptions raised inside a
   stage propagate unwrapped, exactly as the monolith raised them. *)

open Augem_ir
open Augem_machine
open Augem_templates
open Augem_codegen
module M = Matcher

type options = {
  prefer : Plan.prefer;
  max_width : Insn.vwidth option;  (** cap vector width (None = machine) *)
}

let default_options = { prefer = Plan.Prefer_auto; max_width = None }

let lower_opts (opts : options) : Lower.opts =
  {
    Lower.default_opts with
    Lower.prefer = opts.prefer;
    max_width = opts.max_width;
    schedule = false;
  }

(* Generate a complete (unscheduled) assembly program from a
   template-annotated kernel. *)
let generate_annotated ~(arch : Arch.t) ?(opts = default_options)
    (ak : M.akernel) : Insn.program =
  match Lower.run_annotated ~opts:(lower_opts opts) ~arch ak with
  | trace -> Trace.program trace
  | exception Lower.Stage_failed (_, exn) -> raise exn

(* Convenience: identify + generate from low-level C. *)
let generate ~(arch : Arch.t) ?(opts = default_options) (k : Ast.kernel) :
    Insn.program =
  generate_annotated ~arch ~opts (M.identify k)
