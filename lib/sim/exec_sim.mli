(** Functional simulator for the generated assembly: executes every
    instruction of an {!Augem_machine.Insn.program} with exact x86-64
    semantics (within our subset).  This is the correctness gate of the
    whole framework: generated kernels run here against randomized
    inputs and are compared with the reference BLAS.

    Memory is a flat 8-byte-cell store; FP values live as their
    IEEE-754 bit patterns (doubles fill a cell, floats half of one).
    Caller buffers are copied in at distinct base addresses and copied
    back after the run.

    The machine is typed by the kernel's element type: lane counts,
    shuffle semantics and element sizes follow [state.et], and f32
    arithmetic rounds every result to binary32. *)

exception Sim_error of string

(** Full machine state.  Exposed for white-box tests (e.g. checking
    callee-saved registers survive a call). *)
type state = {
  et : Augem_machine.Etype.t;  (** element type of the vector lanes *)
  gpr : int64 array;
  vec : float array array;  (** 16 registers x 8 lanes (f64 uses 4) *)
  mem : (int, int64) Hashtbl.t;
  mutable flags : int64 * int64;  (** last comparison operands *)
  mutable executed : int;
  mutable flops : int;
  mutable loads : int;
  mutable stores : int;
  mutable prefetches : int;
}

val create : ?et:Augem_machine.Etype.t -> unit -> state
val get_gpr : state -> Augem_machine.Reg.gpr -> int64
val set_gpr : state -> Augem_machine.Reg.gpr -> int64 -> unit

(** Default [fuel] for {!run} and {!call}: the dynamic instruction
    budget after which a run faults with {!Sim_error} ("fuel
    exhausted").  Callers guarding against diverging programs (the
    harness, the chaos suite) pass a much smaller budget. *)
val default_fuel : int

(** Dynamic-execution counters of one run. *)
type result = {
  r_executed : int;
  r_flops : int;
  r_loads : int;
  r_stores : int;
  r_prefetches : int;
}

(** Run a program to completion (top-level [Ret]).  [fuel] bounds the
    dynamic instruction count; [sp] sets the initial stack pointer.
    Raises {!Sim_error} on faults (unaligned access, undefined label,
    fuel exhaustion). *)
val run :
  ?fuel:int ->
  ?sp:int ->
  ?on_access:(addr:int -> bytes:int -> store:bool -> unit) ->
  state ->
  Augem_machine.Insn.program ->
  result

(** Arguments for {!call}; [Abuf] arrays are copied back (mutated)
    after the run. *)
type arg =
  | Aint of int
  | Adouble of float
  | Abuf of float array

(** Call a program with System V AMD64 argument passing (integer and
    pointer args in rdi/rsi/rdx/rcx/r8/r9 then the stack, FP scalars
    in xmm0-7).  [et] selects the element type the machine runs at
    (default double precision); [Abuf]/[Adouble] payloads are rounded
    to it on the way in. *)
val call :
  ?et:Augem_machine.Etype.t ->
  ?fuel:int ->
  ?on_access:(addr:int -> bytes:int -> store:bool -> unit) ->
  Augem_machine.Insn.program ->
  arg list ->
  result
