(* Cycle-level model of the generated kernels.  The steady-state cost
   of the hot innermost loop is measured by list-scheduling several
   replicated copies of its body on the architecture's execution
   resources (dependences, latencies, unit throughputs, issue width)
   and differencing the makespans — the standard software-pipelining
   estimate used by kernel writers.

   This captures exactly the effects the paper attributes wins to: FMA
   vs Mul+Add, 256-bit vs 128-bit datapaths, accumulator-chain
   latencies, register-queue false dependences, and loop overhead. *)

open Augem_machine

type loop_info = {
  li_label : string;
  li_body : Insn.t list; (* including the back-edge compare/branch *)
  li_flops : int; (* per iteration *)
  li_loads : int;
  li_stores : int;
  li_load_bytes : int;
  li_store_bytes : int;
  li_prefetches : int;
  li_cycles : float; (* steady-state cycles per iteration *)
}

(* Innermost loops: a Label L ... Jcc L span containing no other label
   whose body also ends at the branch. *)
let innermost_loops (p : Insn.program) : (string * Insn.t list) list =
  let insns = Array.of_list p.Insn.prog_insns in
  let n = Array.length insns in
  let index_of_label = Hashtbl.create 16 in
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Label l -> Hashtbl.replace index_of_label l i
      | _ -> ())
    insns;
  let loops = ref [] in
  for j = 0 to n - 1 do
    match insns.(j) with
    | Insn.Jcc (_, l) | Insn.Jmp l -> (
        match Hashtbl.find_opt index_of_label l with
        | Some i when i < j ->
            (* backward branch: body = (i, j] *)
            let has_inner_label = ref false in
            for k = i + 1 to j - 1 do
              match insns.(k) with
              | Insn.Label _ -> has_inner_label := true
              | _ -> ()
            done;
            if not !has_inner_label then begin
              let body = Array.to_list (Array.sub insns (i + 1) (j - i)) in
              loops := (l, body) :: !loops
            end
        | Some _ | None -> ())
    | _ -> ()
  done;
  List.rev !loops

let body_stats ?(et = Etype.F64) (body : Insn.t list) =
  let flops = List.fold_left (fun acc i -> acc + Insn.flops ~et i) 0 body in
  let count f = List.length (List.filter f body) in
  let load_bytes =
    List.fold_left
      (fun acc i ->
        match i with
        | Insn.Vload { w; _ } -> acc + (Insn.width_bits w / 8)
        | Insn.Vbroadcast _ -> acc + Etype.bytes et
        | Insn.Loadq _ -> acc + 8
        | _ -> acc)
      0 body
  in
  let store_bytes =
    List.fold_left
      (fun acc i ->
        match i with
        | Insn.Vstore { w; _ } -> acc + (Insn.width_bits w / 8)
        | Insn.Storeq _ -> acc + 8
        | _ -> acc)
      0 body
  in
  ( flops,
    count (function Insn.Vload _ | Insn.Vbroadcast _ | Insn.Loadq _ -> true | _ -> false),
    count (function Insn.Vstore _ | Insn.Storeq _ -> true | _ -> false),
    load_bytes,
    store_bytes,
    count (function Insn.Prefetch _ -> true | _ -> false) )

(* Steady-state cycles per iteration via replication differencing.
   [pipeline_model] selects the core model: [`Out_of_order] (renamed
   registers, address-based disambiguation — the default, matching the
   real Sandy Bridge/Piledriver cores) or [`In_order] (program-order
   issue, no renaming — used by the scheduling ablation: on an in-order
   pipe the static instruction scheduler is what hides latencies). *)
let steady_cycles ?(pipeline_model = `Out_of_order) (arch : Arch.t)
    (body : Insn.t list) : float =
  let clean =
    List.filter
      (function
        | Insn.Label _ | Insn.Comment _ | Insn.Jcc _ | Insn.Jmp _ -> false
        | _ -> true)
      body
  in
  (* keep the compare+branch cost as one issue slot: re-add a token
     integer op per iteration *)
  let replicate k =
    List.concat (List.init k (fun _ -> clean))
  in
  let k1 = 4 and k2 = 8 in
  let rename, in_order =
    match pipeline_model with
    | `Out_of_order -> (true, false)
    | `In_order -> (false, true)
  in
  let _, m1 = Depgraph.list_schedule ~rename ~in_order arch (replicate k1) in
  let _, m2 = Depgraph.list_schedule ~rename ~in_order arch (replicate k2) in
  let per_iter = float_of_int (m2 - m1) /. float_of_int (k2 - k1) in
  (* the back-edge branch occupies one branch slot per iteration *)
  Float.max per_iter 1.0

(* Analyze every innermost loop of a program. *)
let analyze ?pipeline_model ?et (arch : Arch.t) (p : Insn.program) :
    loop_info list =
  List.map
    (fun (label, body) ->
      let flops, loads, stores, lb, sb, pf = body_stats ?et body in
      {
        li_label = label;
        li_body = body;
        li_flops = flops;
        li_loads = loads;
        li_stores = stores;
        li_load_bytes = lb;
        li_store_bytes = sb;
        li_prefetches = pf;
        li_cycles = steady_cycles ?pipeline_model arch body;
      })
    (innermost_loops p)

(* The hot loop: the one with the most FLOPs per iteration.  Analyses
   are memoized on the program text — sweeps query the same generated
   kernel at many problem sizes. *)
let hot_cache : (string, loop_info option) Hashtbl.t = Hashtbl.create 64

let hot_loop ?(pipeline_model = `Out_of_order) ?(et = Etype.F64)
    (arch : Arch.t) (p : Insn.program) : loop_info option =
  let key =
    arch.Arch.name
    ^ (match pipeline_model with `Out_of_order -> "/ooo/" | `In_order -> "/io/")
    ^ Etype.name et ^ "/"
    ^ Digest.to_hex (Digest.string (Marshal.to_string p.Insn.prog_insns []))
  in
  match Hashtbl.find_opt hot_cache key with
  | Some v -> v
  | None ->
      let loops = analyze ~pipeline_model ~et arch p in
      let v =
        List.fold_left
          (fun acc li ->
            match acc with
            | None -> Some li
            | Some best ->
                if
                  li.li_flops > best.li_flops
                  || (li.li_flops = best.li_flops
                     && li.li_load_bytes > best.li_load_bytes)
                then Some li
                else Some best)
          None loops
      in
      Hashtbl.replace hot_cache key v;
      v

(* Peak-fraction efficiency of a kernel's hot loop: flops per cycle
   relative to the machine peak. *)
let kernel_efficiency ?(et = Etype.F64) (arch : Arch.t) (p : Insn.program) :
    float =
  match hot_loop ~et arch p with
  | None -> 0.0
  | Some li ->
      if li.li_cycles <= 0. then 0.
      else
        let fpc = float_of_int li.li_flops /. li.li_cycles in
        let peak = Arch.peak_mflops ~et arch /. (arch.Arch.turbo_ghz *. 1000.) in
        Float.min 1.0 (fpc /. peak)
