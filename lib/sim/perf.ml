(* MFLOPS predictor: combines the cycle-level steady-state cost of a
   kernel's hot loop (Cycle_sim) with the streaming-bandwidth bound of
   the memory system (Mem_model) for a given problem size, exactly the
   two-bound reasoning (compute roof vs. bandwidth roof) that governs
   dense linear algebra performance.

   The absolute numbers are those of the modelled microarchitectures;
   the benchmarks compare *libraries* on the *same* model, so relative
   positions — who wins, by what factor — are what carries over from
   the paper. *)

open Augem_machine

type workload =
  | W_gemm of { m : int; n : int; k : int } (* C(m x n) += A(m x k) B(k x n) *)
  | W_gemv of { m : int; n : int } (* y(m) += A(m x n) x(n) *)
  | W_axpy of { n : int }
  | W_dot of { n : int }

let workload_flops = function
  | W_gemm { m; n; k } -> 2.0 *. float_of_int m *. float_of_int n *. float_of_int k
  | W_gemv { m; n } -> 2.0 *. float_of_int m *. float_of_int n
  | W_axpy { n } -> 2.0 *. float_of_int n
  | W_dot { n } -> 2.0 *. float_of_int n

(* Elements touched, for kernels that perform no arithmetic (DCOPY):
   their "MFLOPS" figure is then millions of elements per second. *)
let workload_elements = function
  | W_gemm { m; n; k } -> float_of_int m *. float_of_int n *. float_of_int k
  | W_gemv { m; n } -> float_of_int (m * n)
  | W_axpy { n } | W_dot { n } -> float_of_int n

type estimate = {
  e_mflops : float;
  e_compute_cycles : float;
  e_memory_cycles : float;
  e_flops : float;
  e_level : Mem_model.level;
  e_cycles_per_iter : float;
  e_flops_per_iter : int;
}

(* Fixed call overhead (argument setup, packing-loop startup, BLAS
   interface) in cycles. *)
let call_overhead = 2500.

(* Per-microkernel-invocation overhead for blocked GEMM: accumulator
   zeroing, C tile update, pointer setup. *)
let tile_overhead ~flops_per_iter = 30.0 +. float_of_int flops_per_iter

exception No_hot_loop of string

let analyze_loop ?pipeline_model ?et (arch : Arch.t) (p : Insn.program) :
    Cycle_sim.loop_info =
  match Cycle_sim.hot_loop ?pipeline_model ?et arch p with
  | Some li when li.Cycle_sim.li_flops > 0 || li.Cycle_sim.li_load_bytes > 0
    ->
      li
  | Some _ | None -> raise (No_hot_loop p.Insn.prog_name)

(* Traffic and working-set model per workload (bytes), at element
   size [eb] (8 for f64, 4 for f32). *)
let memory_profile ~(eb : int) (w : workload) : int * float =
  let feb = float_of_int eb in
  match w with
  | W_gemm { m; n; k } ->
      (* Working set of the steady state: the packed panels (sized by
         the blocking, not the problem); traffic: A and B each read and
         repacked once per panel pass, C read+written once. *)
      let fm = float_of_int m and fn = float_of_int n and fk = float_of_int k in
      let traffic = feb *. ((2. *. fm *. fk) +. (2. *. fk *. fn) +. (3. *. fm *. fn)) in
      (* steady-state working set: packed A block (L2-sized by design) *)
      (256 * 1024, traffic)
  | W_gemv { m; n } ->
      let bytes = eb * ((m * n) + m + n) in
      (bytes, feb *. float_of_int ((m * n) + (2 * m) + n))
  | W_axpy { n } ->
      let ws = 2 * eb * n in
      (ws, 3. *. feb *. float_of_int n)
  | W_dot { n } ->
      let ws = 2 * eb * n in
      (ws, 2. *. feb *. float_of_int n)

(* --- blocked vs streamed GEMM predictors -------------------------------- *)

(* Compute-roof cycles of a GEMM micro-kernel whose hot loop retires
   [li_flops] flops per iteration, over [flops] total flops, including
   the per-microtile invocation overhead (same accounting as the
   W_gemm branch of [predict]). *)
let gemm_compute_cycles (li : Cycle_sim.loop_info) ~(flops : float) : float =
  if li.Cycle_sim.li_flops = 0 then
    raise (No_hot_loop "gemm hot loop retires no flops");
  let per_iter = float_of_int li.Cycle_sim.li_flops in
  let work_per_cycle = per_iter /. li.Cycle_sim.li_cycles in
  let tiles = flops /. 2.0 /. per_iter *. 2.0 /. 256. in
  (flops /. work_per_cycle)
  +. (tiles *. tile_overhead ~flops_per_iter:li.Cycle_sim.li_flops)

let gemm_dims = function
  | W_gemm { m; n; k } -> (float_of_int m, float_of_int n, float_of_int k)
  | _ -> invalid_arg "Perf: blocked/streamed prediction needs a W_gemm workload"

let ceil_div a b = Float.of_int (int_of_float (Float.ceil (a /. b)))

(* The full blocked driver: packing + macro-kernel loops around the
   micro-kernel, under an explicit MC/KC/NC blocking.  DRAM traffic
   follows Goto's analysis: packed B written/read once per (jc,pc)
   panel — 2·k·n total; the A block packed once per jc pass —
   2·m·k·ceil(n/NC); C read+written once per pc pass —
   2·m·n·ceil(k/KC).  Micro-kernel loads stream from the packed
   panels resident in L1/L2, and their port pressure is already inside
   the hot loop's cycle count, so they add no memory-leg traffic. *)
let predict_blocked ?pipeline_model ?(et = Etype.F64) (arch : Arch.t)
    (p : Insn.program) ~(blocking : Mem_model.blocking) (w : workload) :
    estimate =
  let li = analyze_loop ?pipeline_model ~et arch p in
  let feb = float_of_int (Etype.bytes et) in
  let fm, fn, fk = gemm_dims w in
  let flops = workload_flops w in
  let n_jc = ceil_div fn (float_of_int blocking.Mem_model.bl_nc) in
  let n_pc = ceil_div fk (float_of_int blocking.Mem_model.bl_kc) in
  let n_ic = ceil_div fm (float_of_int blocking.Mem_model.bl_mc) in
  (* per-block driver overhead: one pack-A + one micro-kernel dispatch
     per (jc, pc, ic) block, one pack-B per (jc, pc) *)
  let blocks = n_jc *. n_pc *. n_ic in
  let compute =
    gemm_compute_cycles li ~flops +. (blocks *. 200.) +. (n_jc *. n_pc *. 100.)
  in
  let traffic =
    feb
    *. ((2. *. fk *. fn) (* pack B: read + write packed *)
       +. (2. *. fm *. fk *. n_jc) (* pack A, once per jc pass *)
       +. (2. *. fm *. fn *. n_pc) (* C read + write, once per pc pass *))
  in
  let working_set =
    Etype.bytes et * int_of_float ((fm *. fk) +. (fk *. fn) +. (fm *. fn))
  in
  let prefetch = li.Cycle_sim.li_prefetches > 0 in
  let memory = Mem_model.stream_cycles arch ~working_set ~traffic ~prefetch in
  let total = Float.max compute memory +. call_overhead in
  let mflops = flops *. arch.Arch.turbo_ghz *. 1000.0 /. total in
  let panel_set =
    Etype.bytes et * blocking.Mem_model.bl_mc * blocking.Mem_model.bl_kc
  in
  {
    e_mflops = mflops;
    e_compute_cycles = compute;
    e_memory_cycles = memory;
    e_flops = flops;
    e_level = Mem_model.stream_level arch ~working_set:panel_set;
    e_cycles_per_iter = li.Cycle_sim.li_cycles;
    e_flops_per_iter = li.Cycle_sim.li_flops;
  }

(* The unblocked path the benchmarks measured before the macro-kernel
   existed: the micro-kernel streaming over the full matrices as one
   giant panel.  Without cache blocking the whole of A is re-read for
   every NR-wide column strip of C, so the working set is the full
   problem and the traffic scales with n/NR — DRAM-bound at any size
   that matters.

   Unlike the blocked driver, the memory leg does NOT overlap with
   compute: blocking is precisely what keeps the micro-kernel's
   operands cache-resident so its loads retire at the cycle-model's
   L1 latencies.  Streaming the full matrices, each panel pass misses
   to DRAM and the out-of-order window (tens of instructions) cannot
   hide hundreds of cycles of miss latency, so the legs serialize —
   the textbook account of why unblocked GEMM collapses, and the
   behaviour blocking exists to fix. *)
let predict_streamed ?pipeline_model ?(et = Etype.F64) (arch : Arch.t)
    (p : Insn.program) ?(nr = 4) (w : workload) : estimate =
  let li = analyze_loop ?pipeline_model ~et arch p in
  let fm, fn, fk = gemm_dims w in
  let flops = workload_flops w in
  let strips = ceil_div fn (float_of_int (max 1 nr)) in
  let compute = gemm_compute_cycles li ~flops in
  let feb = float_of_int (Etype.bytes et) in
  let traffic =
    feb *. ((fm *. fk *. strips) +. (fk *. fn) +. (2. *. fm *. fn))
  in
  let working_set =
    Etype.bytes et * int_of_float ((fm *. fk) +. (fk *. fn) +. (fm *. fn))
  in
  let prefetch = li.Cycle_sim.li_prefetches > 0 in
  let memory = Mem_model.stream_cycles arch ~working_set ~traffic ~prefetch in
  let total = compute +. memory +. call_overhead in
  let mflops = flops *. arch.Arch.turbo_ghz *. 1000.0 /. total in
  {
    e_mflops = mflops;
    e_compute_cycles = compute;
    e_memory_cycles = memory;
    e_flops = flops;
    e_level = Mem_model.stream_level arch ~working_set;
    e_cycles_per_iter = li.Cycle_sim.li_cycles;
    e_flops_per_iter = li.Cycle_sim.li_flops;
  }

let predict ?pipeline_model ?(et = Etype.F64) (arch : Arch.t)
    (p : Insn.program) (w : workload) : estimate =
  let li = analyze_loop ?pipeline_model ~et arch p in
  let flops = workload_flops w in
  (* work accounting: flops when the loop computes, elements when it
     only moves data (DCOPY-style) *)
  let work, units_per_iter =
    if li.Cycle_sim.li_flops > 0 then
      (flops, float_of_int li.Cycle_sim.li_flops)
    else
      ( workload_elements w,
        Float.max 1.0
          (float_of_int (li.Cycle_sim.li_load_bytes / Etype.bytes et)) )
  in
  let work_per_cycle = units_per_iter /. li.Cycle_sim.li_cycles in
  let compute =
    (work /. work_per_cycle)
    +.
    match w with
    | W_gemm { m; n; k = _ } ->
        (* one microtile pass per (Mr x Nr) tile per Kc block; the k
           loop is the hot loop, so per-invocation overhead amortizes
           over Kc iterations *)
        let tiles =
          flops /. 2.0 /. float_of_int li.Cycle_sim.li_flops *. 2.0 /. 256.
        in
        ignore (m, n);
        tiles *. tile_overhead ~flops_per_iter:li.Cycle_sim.li_flops
    | W_gemv { n; _ } -> float_of_int n *. 12.0 (* per-column setup *)
    | W_axpy _ | W_dot _ -> 0.0
  in
  let working_set, traffic = memory_profile ~eb:(Etype.bytes et) w in
  let prefetch = li.Cycle_sim.li_prefetches > 0 in
  let memory =
    Mem_model.stream_cycles arch ~working_set ~traffic ~prefetch
  in
  let total = Float.max compute memory +. call_overhead in
  let rate_basis = if li.Cycle_sim.li_flops > 0 then flops else work in
  let mflops = rate_basis *. arch.Arch.turbo_ghz *. 1000.0 /. total in
  {
    e_mflops = mflops;
    e_compute_cycles = compute;
    e_memory_cycles = memory;
    e_flops = flops;
    e_level = Mem_model.stream_level arch ~working_set;
    e_cycles_per_iter = li.Cycle_sim.li_cycles;
    e_flops_per_iter = li.Cycle_sim.li_flops;
  }
