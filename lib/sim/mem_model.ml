(* Cache and bandwidth model.  Kernels are modelled as streaming
   computations: the achievable data rate is the bandwidth of the
   smallest cache level that holds the working set, scaled by a
   utilization factor that rewards software prefetching (the measured
   effect the paper's prefetch optimization exists for). *)

open Augem_machine

type level =
  | L1
  | L2
  | L3
  | DRAM

let level_name = function L1 -> "L1" | L2 -> "L2" | L3 -> "L3" | DRAM -> "DRAM"

(* The level a working set of [bytes] lives in once warm. *)
let residency (arch : Arch.t) (bytes : int) : level =
  if bytes <= arch.Arch.l1_bytes then L1
  else if bytes <= arch.Arch.l2_bytes then L2
  else if arch.Arch.l3_bytes > 0 && bytes <= arch.Arch.l3_bytes then L3
  else DRAM

let raw_bandwidth (arch : Arch.t) = function
  | L1 -> arch.Arch.bw_l1
  | L2 -> arch.Arch.bw_l2
  | L3 -> arch.Arch.bw_l3
  | DRAM -> arch.Arch.bw_mem

(* Fraction of the raw bandwidth a streaming kernel sustains.  Software
   prefetch hides most of the access latency beyond L1; without it the
   hardware prefetcher alone leaves a gap that widens further from the
   core. *)
let utilization (arch : Arch.t) ~(prefetch : bool) (lvl : level) : float =
  let hw = arch.Arch.hw_prefetch in
  match (lvl, prefetch) with
  | L1, _ -> 1.0
  | L2, true -> 0.95
  | L2, false -> 0.85 *. hw
  | L3, true -> 0.92
  | L3, false -> 0.75 *. hw
  | DRAM, true -> 0.90
  | DRAM, false -> 0.70 *. hw

(* Cycles to move [traffic] bytes of streaming data whose working set
   is [working_set] bytes. *)
let stream_cycles (arch : Arch.t) ~(working_set : int) ~(traffic : float)
    ~(prefetch : bool) : float =
  let lvl = residency arch working_set in
  let bw = raw_bandwidth arch lvl *. utilization arch ~prefetch lvl in
  traffic /. bw

let stream_level (arch : Arch.t) ~(working_set : int) : level =
  residency arch working_set

(* --- Goto blocking derivation ------------------------------------------- *)

(* The cache-size-derived MC/KC/NC triple of the blocked GEMM driver
   (Goto & van de Geijn, "Anatomy of high-performance matrix
   multiplication"):

     - the KC x NR micro-panel of packed B streams from L1 while one
       micro-tile computes, so KC is sized to keep it within (half of)
       L1 alongside the A micro-panel;
     - the MC x KC packed block of A is the steady-state resident of
       L2, sized to half of it so packed-B slices and C tiles can pass
       through without evicting it;
     - the KC x NC panel of packed B lives in L3 when one is modelled
       (otherwise NC only bounds the packing buffer).

   All three are rounded down to multiples of the register tile
   (MR/NR) so full blocks decompose into whole micro-tiles; remainder
   handling is the macro-kernel's job, not the derivation's. *)

type blocking = {
  bl_mc : int;
  bl_kc : int;
  bl_nc : int;
}

let blocking_to_string (b : blocking) =
  Printf.sprintf "mc=%d kc=%d nc=%d" b.bl_mc b.bl_kc b.bl_nc

let round_down_to ~multiple x = max multiple (x - (x mod multiple))

let derive_blocking ?(et = Etype.F64) (arch : Arch.t) ~(mr : int) ~(nr : int)
    : blocking =
  let elt = Etype.bytes et in
  (* KC: the KC x NR slice of packed B must sit in half of L1 (the
     other half carries the A micro-panel and the C tile). *)
  let kc_raw = arch.Arch.l1_bytes / 2 / (elt * nr) in
  let kc = max 16 (round_down_to ~multiple:16 kc_raw) in
  (* MC: the MC x KC packed block of A occupies half of L2. *)
  let mc_raw = arch.Arch.l2_bytes / 2 / (elt * kc) in
  let mc = round_down_to ~multiple:mr (max mr mc_raw) in
  (* NC: the KC x NC packed panel of B occupies half of L3 when one is
     modelled; without an L3 it only sizes the packing buffer. *)
  let nc_raw =
    if arch.Arch.l3_bytes > 0 then arch.Arch.l3_bytes / 2 / (elt * kc)
    else 4096
  in
  let nc = round_down_to ~multiple:nr (max nr (min 8192 nc_raw)) in
  { bl_mc = mc; bl_kc = kc; bl_nc = nc }

(* The blocking dimension of the tuner's search space: the derived
   triple plus halved/doubled variants of each dimension that still
   satisfy the cache-capacity constraints (same cache level for the
   panel each constraint protects).  Deduplicated, derived point
   first — on a score tie the analytic derivation wins. *)
let blocking_candidates ?(et = Etype.F64) (arch : Arch.t) ~(mr : int)
    ~(nr : int) : blocking list =
  let d = derive_blocking ~et arch ~mr ~nr in
  let fits (b : blocking) =
    let elt = Etype.bytes et in
    b.bl_kc >= 16 && b.bl_mc >= mr && b.bl_nc >= nr
    && elt * b.bl_kc * nr <= arch.Arch.l1_bytes
    && elt * b.bl_mc * b.bl_kc <= arch.Arch.l2_bytes
  in
  let scale f x ~multiple = round_down_to ~multiple (int_of_float (float_of_int x *. f)) in
  let variants =
    d
    :: List.concat_map
         (fun f ->
           [
             { d with bl_mc = scale f d.bl_mc ~multiple:mr };
             { d with bl_kc = scale f d.bl_kc ~multiple:16 };
             { d with bl_nc = scale f d.bl_nc ~multiple:nr };
           ])
         [ 0.5; 2.0 ]
  in
  let rec dedup seen = function
    | [] -> []
    | b :: rest ->
        if List.mem b seen then dedup seen rest
        else b :: dedup (b :: seen) rest
  in
  dedup [] (List.filter fits variants)
