(* Functional simulator for the generated assembly: executes every
   instruction of [Insn.program] with exact x86-64 semantics (as far as
   our subset goes).  This is the correctness gate of the whole
   framework: generated kernels run here against randomized inputs and
   are compared with the reference BLAS.

   Memory is a flat 8-byte-cell store; FP values live as their IEEE-754
   bit patterns (doubles fill a cell, floats half of one).  Caller
   buffers are copied in at distinct base addresses and copied back out
   after the run.

   The simulated machine is typed by the kernel's element type: vector
   registers hold up to 8 lanes (f32 at 256 bits); every lane-indexed
   operation takes its semantics — lane counts, shuffle immediates,
   element size — from [state.et], and f32 arithmetic rounds each
   result to binary32. *)

open Augem_machine

exception Sim_error of string

let err fmt = Fmt.kstr (fun s -> raise (Sim_error s)) fmt

type state = {
  et : Etype.t; (* element type the vector lanes are interpreted at *)
  gpr : int64 array; (* 16 *)
  vec : float array array; (* 16 x 8 lanes (f64 uses the first 4) *)
  mem : (int, int64) Hashtbl.t; (* cell index (addr/8) -> bits *)
  mutable flags : int64 * int64; (* last comparison operands *)
  mutable executed : int;
  mutable flops : int;
  mutable loads : int;
  mutable stores : int;
  mutable prefetches : int;
}

let stack_base = 0x7F_0000_0000

let create ?(et = Etype.F64) () =
  {
    et;
    gpr = Array.make 16 0L;
    vec = Array.init 16 (fun _ -> Array.make 8 0.);
    mem = Hashtbl.create 4096;
    flags = (0L, 0L);
    executed = 0;
    flops = 0;
    loads = 0;
    stores = 0;
    prefetches = 0;
  }

let gpr_idx = Reg.gpr_index

let get_gpr st r = st.gpr.(gpr_idx r)
let set_gpr st r v = st.gpr.(gpr_idx r) <- v

(* lanes per 128-bit half at this state's element type *)
let l128 st = match st.et with Etype.F64 -> 2 | Etype.F32 -> 4

(* total lanes of a full-width (256-bit) register *)
let lmax st = 2 * l128 st

let vlanes st w = Insn.lanes_of st.et w

let addr_of st (m : Insn.mem) : int =
  let base = Int64.to_int (get_gpr st m.Insn.base) in
  let index =
    match m.Insn.index with
    | None -> 0
    | Some (r, s) -> Int64.to_int (get_gpr st r) * Insn.scale_value s
  in
  base + index + m.Insn.disp

let read_cell st addr =
  if addr land 7 <> 0 then err "unaligned 8-byte access at %#x" addr;
  match Hashtbl.find_opt st.mem (addr asr 3) with
  | Some v -> v
  | None -> 0L

let write_cell st addr v =
  if addr land 7 <> 0 then err "unaligned 8-byte access at %#x" addr;
  Hashtbl.replace st.mem (addr asr 3) v

(* 4-byte half-cell access for f32 elements (align 4) *)
let read_half st addr =
  if addr land 3 <> 0 then err "unaligned 4-byte access at %#x" addr;
  let cell =
    match Hashtbl.find_opt st.mem (addr asr 3) with Some v -> v | None -> 0L
  in
  if addr land 4 = 0 then Int64.to_int32 (Int64.logand cell 0xFFFF_FFFFL)
  else Int64.to_int32 (Int64.shift_right_logical cell 32)

let write_half st addr (bits : int32) =
  if addr land 3 <> 0 then err "unaligned 4-byte access at %#x" addr;
  let cell =
    match Hashtbl.find_opt st.mem (addr asr 3) with Some v -> v | None -> 0L
  in
  let b = Int64.logand (Int64.of_int32 bits) 0xFFFF_FFFFL in
  let cell' =
    if addr land 4 = 0 then
      Int64.logor (Int64.logand cell 0xFFFF_FFFF_0000_0000L) b
    else Int64.logor (Int64.logand cell 0xFFFF_FFFFL) (Int64.shift_left b 32)
  in
  Hashtbl.replace st.mem (addr asr 3) cell'

(* one FP element at the state's element type *)
let read_elt st addr =
  match st.et with
  | Etype.F64 -> Int64.float_of_bits (read_cell st addr)
  | Etype.F32 -> Int32.float_of_bits (read_half st addr)

let write_elt st addr f =
  match st.et with
  | Etype.F64 -> write_cell st addr (Int64.bits_of_float f)
  | Etype.F32 -> write_half st addr (Int32.bits_of_float f)

let elt_bytes st = Etype.bytes st.et

(* --- buffers ----------------------------------------------------------- *)

(* Base addresses for caller buffers: 1 MiB apart, starting at 16 MiB. *)
let buffer_base i = (16 + i) * 0x10_0000

let load_buffer st ~base (data : float array) =
  let eb = elt_bytes st in
  Array.iteri (fun i x -> write_elt st (base + (eb * i)) x) data

let read_back st ~base (data : float array) =
  let eb = elt_bytes st in
  Array.iteri (fun i _ -> data.(i) <- read_elt st (base + (eb * i))) data

(* --- execution --------------------------------------------------------- *)

(* f32 states round every arithmetic result to binary32 *)
let fround st x = Etype.round st.et x

let exec_fpop st (op : Insn.fpop) w dst src1 src2 =
  let v = st.vec in
  let n = vlanes st w in
  let h = l128 st in
  let m = lmax st in
  let d = Array.copy v.(dst) in
  let zero_from k =
    for i = k to 7 do
      d.(i) <- 0.
    done
  in
  (match op with
  | Insn.Fadd | Insn.Fsub | Insn.Fmul | Insn.Fdiv ->
      let f =
        match op with
        | Insn.Fadd -> ( +. )
        | Insn.Fsub -> ( -. )
        | Insn.Fmul -> ( *. )
        | Insn.Fdiv -> ( /. )
        | _ -> assert false
      in
      st.flops <- st.flops + n;
      for i = 0 to n - 1 do
        d.(i) <- fround st (f v.(src1).(i) v.(src2).(i))
      done;
      (* scalar ops leave upper lanes as src1 (VEX) / dst (SSE=src1) *)
      if w = Insn.W64 then
        for i = 1 to m - 1 do
          d.(i) <- v.(src1).(i)
        done
      else if w = Insn.W128 then zero_from h
  | Insn.Fxor ->
      (* xorps/xorpd always cover at least the full 128-bit register *)
      let n' = if w = Insn.W64 then h else n in
      for i = 0 to m - 1 do
        if i < n' then
          d.(i) <-
            Int64.float_of_bits
              (Int64.logxor
                 (Int64.bits_of_float v.(src1).(i))
                 (Int64.bits_of_float v.(src2).(i)))
        else d.(i) <- 0.
      done
  | Insn.Fmov ->
      let n' = max n h in
      for i = 0 to 7 do
        d.(i) <- (if i < n' then v.(src1).(i) else 0.)
      done
  | Insn.Fma231 ->
      st.flops <- st.flops + (2 * n);
      for i = 0 to n - 1 do
        d.(i) <- fround st (Float.fma v.(src1).(i) v.(src2).(i) v.(dst).(i))
      done;
      if w = Insn.W64 then () (* upper lanes keep dst *)
      else if w = Insn.W128 then zero_from h
  | Insn.Fhadd -> (
      st.flops <- st.flops + n;
      match st.et with
      | Etype.F64 ->
          d.(0) <- fround st (v.(src1).(0) +. v.(src1).(1));
          d.(1) <- fround st (v.(src2).(0) +. v.(src2).(1));
          if w = Insn.W256 then begin
            d.(2) <- fround st (v.(src1).(2) +. v.(src1).(3));
            d.(3) <- fround st (v.(src2).(2) +. v.(src2).(3))
          end
          else zero_from 2
      | Etype.F32 ->
          (* haddps: per 128-bit half, pairwise sums of src1 then src2 *)
          let half o =
            d.(o + 0) <- fround st (v.(src1).(o + 0) +. v.(src1).(o + 1));
            d.(o + 1) <- fround st (v.(src1).(o + 2) +. v.(src1).(o + 3));
            d.(o + 2) <- fround st (v.(src2).(o + 0) +. v.(src2).(o + 1));
            d.(o + 3) <- fround st (v.(src2).(o + 2) +. v.(src2).(o + 3))
          in
          half 0;
          if w = Insn.W256 then half 4 else zero_from 4)
  | Insn.Funpckl -> (
      match st.et with
      | Etype.F64 ->
          d.(0) <- v.(src1).(0);
          d.(1) <- v.(src2).(0);
          if w = Insn.W256 then begin
            d.(2) <- v.(src1).(2);
            d.(3) <- v.(src2).(2)
          end
          else zero_from 2
      | Etype.F32 ->
          let half o =
            d.(o + 0) <- v.(src1).(o + 0);
            d.(o + 1) <- v.(src2).(o + 0);
            d.(o + 2) <- v.(src1).(o + 1);
            d.(o + 3) <- v.(src2).(o + 1)
          in
          half 0;
          if w = Insn.W256 then half 4 else zero_from 4)
  | Insn.Funpckh -> (
      match st.et with
      | Etype.F64 ->
          d.(0) <- v.(src1).(1);
          d.(1) <- v.(src2).(1);
          if w = Insn.W256 then begin
            d.(2) <- v.(src1).(3);
            d.(3) <- v.(src2).(3)
          end
          else zero_from 2
      | Etype.F32 ->
          let half o =
            d.(o + 0) <- v.(src1).(o + 2);
            d.(o + 1) <- v.(src2).(o + 2);
            d.(o + 2) <- v.(src1).(o + 3);
            d.(o + 3) <- v.(src2).(o + 3)
          in
          half 0;
          if w = Insn.W256 then half 4 else zero_from 4));
  v.(dst) <- d

let cond_holds (a, b) = function
  | Insn.Clt -> Int64.compare a b < 0
  | Insn.Cle -> Int64.compare a b <= 0
  | Insn.Cgt -> Int64.compare a b > 0
  | Insn.Cge -> Int64.compare a b >= 0
  | Insn.Ceq -> Int64.equal a b
  | Insn.Cne -> not (Int64.equal a b)

type result = {
  r_executed : int;
  r_flops : int;
  r_loads : int;
  r_stores : int;
  r_prefetches : int;
}

let default_fuel = 2_000_000_000

(* Run a program to completion (Ret at top level).  [sp] sets the
   initial stack pointer (arguments may already sit above it);
   [on_access] observes every data-memory access (cache simulation). *)
let run ?(fuel = default_fuel) ?(sp = stack_base) ?on_access (st : state)
    (p : Insn.program) : result =
  let insns = Array.of_list p.Insn.prog_insns in
  let labels = Hashtbl.create 32 in
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Label l -> Hashtbl.replace labels l i
      | _ -> ())
    insns;
  let target l =
    match Hashtbl.find_opt labels l with
    | Some i -> i
    | None -> err "undefined label %s" l
  in
  set_gpr st Reg.Rsp (Int64.of_int sp);
  let observe ~addr ~bytes ~store =
    match on_access with
    | Some f -> f ~addr ~bytes ~store
    | None -> ()
  in
  let eb = elt_bytes st in
  let pc = ref 0 in
  let steps = ref 0 in
  let n = Array.length insns in
  let running = ref true in
  while !running do
    if !pc >= n then err "fell off the end of the program";
    incr steps;
    if !steps > fuel then err "fuel exhausted (%d instructions)" fuel;
    let i = insns.(!pc) in
    st.executed <- st.executed + 1;
    incr pc;
    match i with
    | Insn.Label _ | Insn.Comment _ -> st.executed <- st.executed - 1
    | Insn.Vop { op; w; dst; src1; src2 } -> exec_fpop st op w dst src1 src2
    | Insn.Vfma4 { w; dst; a; b; c } ->
        let v = st.vec in
        let nw = vlanes st w in
        st.flops <- st.flops + (2 * nw);
        let d = Array.make 8 0. in
        for l = 0 to nw - 1 do
          d.(l) <- fround st (Float.fma v.(a).(l) v.(b).(l) v.(c).(l))
        done;
        if w = Insn.W64 then
          for l = 1 to lmax st - 1 do
            d.(l) <- v.(a).(l)
          done;
        v.(dst) <- d
    | Insn.Vload { w; dst; src } ->
        st.loads <- st.loads + 1;
        let a = addr_of st src in
        observe ~addr:a ~bytes:(Insn.width_bits w / 8) ~store:false;
        let d = Array.make 8 0. in
        for l = 0 to vlanes st w - 1 do
          d.(l) <- read_elt st (a + (eb * l))
        done;
        st.vec.(dst) <- d
    | Insn.Vstore { w; src; dst } ->
        st.stores <- st.stores + 1;
        let a = addr_of st dst in
        observe ~addr:a ~bytes:(Insn.width_bits w / 8) ~store:true;
        for l = 0 to vlanes st w - 1 do
          write_elt st (a + (eb * l)) st.vec.(src).(l)
        done
    | Insn.Vbroadcast { w; dst; src } ->
        st.loads <- st.loads + 1;
        let a = addr_of st src in
        observe ~addr:a ~bytes:eb ~store:false;
        let x = read_elt st a in
        let d = Array.make 8 0. in
        for l = 0 to max (vlanes st w) 1 - 1 do
          d.(l) <- x
        done;
        (* the 128-bit broadcast fills its whole register (movddup /
           vbroadcastss) *)
        if w = Insn.W128 then
          for l = 0 to l128 st - 1 do
            d.(l) <- x
          done;
        st.vec.(dst) <- d
    | Insn.Vshuf { w; dst; src1; src2; imm } -> (
        let v = st.vec in
        let d = Array.make 8 0. in
        (match st.et with
        | Etype.F64 ->
            (* shufpd: one select bit per lane *)
            d.(0) <- v.(src1).(imm land 1);
            d.(1) <- v.(src2).((imm lsr 1) land 1);
            if w = Insn.W256 then begin
              d.(2) <- v.(src1).(2 + ((imm lsr 2) land 1));
              d.(3) <- v.(src2).(2 + ((imm lsr 3) land 1))
            end
        | Etype.F32 ->
            (* shufps: two bits per lane, the same immediate applied to
               each 128-bit half; low two lanes from src1, high two
               from src2 *)
            let half o =
              d.(o + 0) <- v.(src1).(o + (imm land 3));
              d.(o + 1) <- v.(src1).(o + ((imm lsr 2) land 3));
              d.(o + 2) <- v.(src2).(o + ((imm lsr 4) land 3));
              d.(o + 3) <- v.(src2).(o + ((imm lsr 6) land 3))
            in
            half 0;
            if w = Insn.W256 then half 4);
        v.(dst) <- d)
    | Insn.Vblend { w; dst; src1; src2; imm } ->
        let v = st.vec in
        let d = Array.make 8 0. in
        for l = 0 to vlanes st w - 1 do
          d.(l) <- (if (imm lsr l) land 1 = 1 then v.(src2).(l) else v.(src1).(l))
        done;
        v.(dst) <- d
    | Insn.Vperm128 { dst; src1; src2; imm } ->
        let v = st.vec in
        let h = l128 st in
        let sel nib =
          if nib land 8 <> 0 then Array.make h 0.
          else
            let src, o =
              match nib land 3 with
              | 0 -> (src1, 0)
              | 1 -> (src1, h)
              | 2 -> (src2, 0)
              | _ -> (src2, h)
            in
            Array.init h (fun l -> v.(src).(o + l))
        in
        let lo = sel (imm land 0xF) and hi = sel ((imm lsr 4) land 0xF) in
        let d = Array.make 8 0. in
        Array.blit lo 0 d 0 h;
        Array.blit hi 0 d h h;
        v.(dst) <- d
    | Insn.Vextract128 { dst; src; lane } ->
        let v = st.vec in
        let h = l128 st in
        let o = lane * h in
        let d = Array.make 8 0. in
        for l = 0 to h - 1 do
          d.(l) <- v.(src).(o + l)
        done;
        v.(dst) <- d
    | Insn.Movq_xr { dst; src } ->
        let d = Array.make 8 0. in
        (d.(0) <-
           (match st.et with
           | Etype.F64 -> Int64.float_of_bits (get_gpr st src)
           | Etype.F32 ->
               (* movd: the low 32 bits of the gpr as a float *)
               Int32.float_of_bits (Int64.to_int32 (get_gpr st src))));
        st.vec.(dst) <- d
    | Insn.Movri (r, v) -> set_gpr st r (Int64.of_int v)
    | Insn.Movabs (r, v) -> set_gpr st r v
    | Insn.Movrr (d, s) -> set_gpr st d (get_gpr st s)
    | Insn.Loadq (d, m) ->
        st.loads <- st.loads + 1;
        set_gpr st d (read_cell st (addr_of st m))
    | Insn.Storeq (m, s) ->
        st.stores <- st.stores + 1;
        write_cell st (addr_of st m) (get_gpr st s)
    | Insn.Addri (r, v) -> set_gpr st r (Int64.add (get_gpr st r) (Int64.of_int v))
    | Insn.Addrr (d, s) -> set_gpr st d (Int64.add (get_gpr st d) (get_gpr st s))
    | Insn.Subri (r, v) -> set_gpr st r (Int64.sub (get_gpr st r) (Int64.of_int v))
    | Insn.Subrr (d, s) -> set_gpr st d (Int64.sub (get_gpr st d) (get_gpr st s))
    | Insn.Imulrr (d, s) -> set_gpr st d (Int64.mul (get_gpr st d) (get_gpr st s))
    | Insn.Imulri (d, s, v) ->
        set_gpr st d (Int64.mul (get_gpr st s) (Int64.of_int v))
    | Insn.Shlri (r, v) -> set_gpr st r (Int64.shift_left (get_gpr st r) v)
    | Insn.Negr r -> set_gpr st r (Int64.neg (get_gpr st r))
    | Insn.Lea (d, m) -> set_gpr st d (Int64.of_int (addr_of st m))
    | Insn.Cmprr (a, b) -> st.flags <- (get_gpr st a, get_gpr st b)
    | Insn.Cmpri (a, v) -> st.flags <- (get_gpr st a, Int64.of_int v)
    | Insn.Jmp l -> pc := target l
    | Insn.Jcc (c, l) -> if cond_holds st.flags c then pc := target l
    | Insn.Push r ->
        let sp = Int64.sub (get_gpr st Reg.Rsp) 8L in
        set_gpr st Reg.Rsp sp;
        write_cell st (Int64.to_int sp) (get_gpr st r)
    | Insn.Pop r ->
        let sp = get_gpr st Reg.Rsp in
        set_gpr st r (read_cell st (Int64.to_int sp));
        set_gpr st Reg.Rsp (Int64.add sp 8L)
    | Insn.Ret -> running := false
    | Insn.Vzeroupper ->
        (* zero bits 255:128 of every vector register *)
        let h = l128 st in
        Array.iter
          (fun v ->
            for l = h to 7 do
              v.(l) <- 0.
            done)
          st.vec
    | Insn.Prefetch (_, m) ->
        (* software prefetch fills the cache like a load *)
        observe ~addr:(addr_of st m) ~bytes:eb ~store:false;
        st.prefetches <- st.prefetches + 1
  done;
  {
    r_executed = st.executed;
    r_flops = st.flops;
    r_loads = st.loads;
    r_stores = st.stores;
    r_prefetches = st.prefetches;
  }

(* --- high-level harness ------------------------------------------------ *)

type arg =
  | Aint of int
  | Adouble of float
  | Abuf of float array (* modified in place after the run *)

(* Call a generated kernel with System V argument passing. *)
let call ?(et = Etype.F64) ?(fuel = default_fuel) ?on_access
    (p : Insn.program) (args : arg list) : result =
  let st = create ~et () in
  let int_regs = ref Reg.argument_gprs in
  let fp_reg = ref 0 in
  let stack_args = ref [] in
  let buffers = ref [] in
  List.iteri
    (fun i a ->
      let as_int_arg v =
        match !int_regs with
        | r :: rest ->
            int_regs := rest;
            set_gpr st r v
        | [] -> stack_args := v :: !stack_args
      in
      match a with
      | Aint n -> as_int_arg (Int64.of_int n)
      | Adouble f ->
          if !fp_reg >= 8 then err "too many double arguments";
          st.vec.(!fp_reg).(0) <- Etype.round et f;
          incr fp_reg
      | Abuf data ->
          let base = buffer_base i in
          load_buffer st ~base data;
          buffers := (base, data) :: !buffers;
          as_int_arg (Int64.of_int base))
    args;
  (* push stack args (right to left), then a fake return address *)
  let sp = ref stack_base in
  List.iter
    (fun v ->
      sp := !sp - 8;
      write_cell st !sp v)
    !stack_args;
  sp := !sp - 8;
  write_cell st !sp 0xDEAD_BEEFL;
  let result = run ~fuel ~sp:!sp ?on_access st p in
  List.iter (fun (base, data) -> read_back st ~base data) !buffers;
  result
