(* Functional simulator for the generated assembly: executes every
   instruction of [Insn.program] with exact x86-64 semantics (as far as
   our subset goes).  This is the correctness gate of the whole
   framework: generated kernels run here against randomized inputs and
   are compared with the reference BLAS.

   Memory is a flat 8-byte-cell store; double-precision values live as
   their IEEE-754 bit patterns.  Caller-allocated buffers are copied in
   at distinct base addresses and copied back out after the run. *)

open Augem_machine

exception Sim_error of string

let err fmt = Fmt.kstr (fun s -> raise (Sim_error s)) fmt

type state = {
  gpr : int64 array; (* 16 *)
  vec : float array array; (* 16 x 4 lanes *)
  mem : (int, int64) Hashtbl.t; (* cell index (addr/8) -> bits *)
  mutable flags : int64 * int64; (* last comparison operands *)
  mutable executed : int;
  mutable flops : int;
  mutable loads : int;
  mutable stores : int;
  mutable prefetches : int;
}

let stack_base = 0x7F_0000_0000

let create () =
  {
    gpr = Array.make 16 0L;
    vec = Array.init 16 (fun _ -> Array.make 4 0.);
    mem = Hashtbl.create 4096;
    flags = (0L, 0L);
    executed = 0;
    flops = 0;
    loads = 0;
    stores = 0;
    prefetches = 0;
  }

let gpr_idx = Reg.gpr_index

let get_gpr st r = st.gpr.(gpr_idx r)
let set_gpr st r v = st.gpr.(gpr_idx r) <- v

let addr_of st (m : Insn.mem) : int =
  let base = Int64.to_int (get_gpr st m.Insn.base) in
  let index =
    match m.Insn.index with
    | None -> 0
    | Some (r, s) -> Int64.to_int (get_gpr st r) * Insn.scale_value s
  in
  base + index + m.Insn.disp

let read_cell st addr =
  if addr land 7 <> 0 then err "unaligned 8-byte access at %#x" addr;
  match Hashtbl.find_opt st.mem (addr asr 3) with
  | Some v -> v
  | None -> 0L

let write_cell st addr v =
  if addr land 7 <> 0 then err "unaligned 8-byte access at %#x" addr;
  Hashtbl.replace st.mem (addr asr 3) v

let read_double st addr = Int64.float_of_bits (read_cell st addr)
let write_double st addr f = write_cell st addr (Int64.bits_of_float f)

(* --- buffers ----------------------------------------------------------- *)

(* Base addresses for caller buffers: 1 MiB apart, starting at 16 MiB. *)
let buffer_base i = (16 + i) * 0x10_0000

let load_buffer st ~base (data : float array) =
  Array.iteri (fun i x -> write_double st (base + (8 * i)) x) data

let read_back st ~base (data : float array) =
  Array.iteri (fun i _ -> data.(i) <- read_double st (base + (8 * i))) data

(* --- execution --------------------------------------------------------- *)

let vlanes = Insn.lanes

let exec_fpop st (op : Insn.fpop) w dst src1 src2 =
  let v = st.vec in
  let n = vlanes w in
  let d = Array.copy v.(dst) in
  (match op with
  | Insn.Fadd | Insn.Fsub | Insn.Fmul | Insn.Fdiv ->
      let f =
        match op with
        | Insn.Fadd -> ( +. )
        | Insn.Fsub -> ( -. )
        | Insn.Fmul -> ( *. )
        | Insn.Fdiv -> ( /. )
        | _ -> assert false
      in
      st.flops <- st.flops + n;
      for i = 0 to n - 1 do
        d.(i) <- f v.(src1).(i) v.(src2).(i)
      done;
      (* scalar ops leave upper lanes as src1 (VEX) / dst (SSE=src1) *)
      if w = Insn.W64 then
        for i = 1 to 3 do
          d.(i) <- v.(src1).(i)
        done
      else if w = Insn.W128 then begin
        d.(2) <- 0.;
        d.(3) <- 0.
      end
  | Insn.Fxor ->
      let n' = if w = Insn.W64 then 2 else n in
      for i = 0 to 3 do
        if i < n' then
          d.(i) <-
            Int64.float_of_bits
              (Int64.logxor
                 (Int64.bits_of_float v.(src1).(i))
                 (Int64.bits_of_float v.(src2).(i)))
        else d.(i) <- 0.
      done
  | Insn.Fmov ->
      for i = 0 to 3 do
        d.(i) <- (if i < max n 2 then v.(src1).(i) else 0.)
      done
  | Insn.Fma231 ->
      st.flops <- st.flops + (2 * n);
      for i = 0 to n - 1 do
        d.(i) <- Float.fma v.(src1).(i) v.(src2).(i) v.(dst).(i)
      done;
      if w = Insn.W64 then ()
      else if w = Insn.W128 then begin
        d.(2) <- 0.;
        d.(3) <- 0.
      end
  | Insn.Fhadd ->
      st.flops <- st.flops + n;
      d.(0) <- v.(src1).(0) +. v.(src1).(1);
      d.(1) <- v.(src2).(0) +. v.(src2).(1);
      if w = Insn.W256 then begin
        d.(2) <- v.(src1).(2) +. v.(src1).(3);
        d.(3) <- v.(src2).(2) +. v.(src2).(3)
      end
      else begin
        d.(2) <- 0.;
        d.(3) <- 0.
      end
  | Insn.Funpckl ->
      d.(0) <- v.(src1).(0);
      d.(1) <- v.(src2).(0);
      if w = Insn.W256 then begin
        d.(2) <- v.(src1).(2);
        d.(3) <- v.(src2).(2)
      end
      else begin
        d.(2) <- 0.;
        d.(3) <- 0.
      end
  | Insn.Funpckh ->
      d.(0) <- v.(src1).(1);
      d.(1) <- v.(src2).(1);
      if w = Insn.W256 then begin
        d.(2) <- v.(src1).(3);
        d.(3) <- v.(src2).(3)
      end
      else begin
        d.(2) <- 0.;
        d.(3) <- 0.
      end);
  v.(dst) <- d

let cond_holds (a, b) = function
  | Insn.Clt -> Int64.compare a b < 0
  | Insn.Cle -> Int64.compare a b <= 0
  | Insn.Cgt -> Int64.compare a b > 0
  | Insn.Cge -> Int64.compare a b >= 0
  | Insn.Ceq -> Int64.equal a b
  | Insn.Cne -> not (Int64.equal a b)

type result = {
  r_executed : int;
  r_flops : int;
  r_loads : int;
  r_stores : int;
  r_prefetches : int;
}

let default_fuel = 2_000_000_000

(* Run a program to completion (Ret at top level).  [sp] sets the
   initial stack pointer (arguments may already sit above it);
   [on_access] observes every data-memory access (cache simulation). *)
let run ?(fuel = default_fuel) ?(sp = stack_base) ?on_access (st : state)
    (p : Insn.program) : result =
  let insns = Array.of_list p.Insn.prog_insns in
  let labels = Hashtbl.create 32 in
  Array.iteri
    (fun i insn ->
      match insn with
      | Insn.Label l -> Hashtbl.replace labels l i
      | _ -> ())
    insns;
  let target l =
    match Hashtbl.find_opt labels l with
    | Some i -> i
    | None -> err "undefined label %s" l
  in
  set_gpr st Reg.Rsp (Int64.of_int sp);
  let observe ~addr ~bytes ~store =
    match on_access with
    | Some f -> f ~addr ~bytes ~store
    | None -> ()
  in
  let pc = ref 0 in
  let steps = ref 0 in
  let n = Array.length insns in
  let running = ref true in
  while !running do
    if !pc >= n then err "fell off the end of the program";
    incr steps;
    if !steps > fuel then err "fuel exhausted (%d instructions)" fuel;
    let i = insns.(!pc) in
    st.executed <- st.executed + 1;
    incr pc;
    match i with
    | Insn.Label _ | Insn.Comment _ -> st.executed <- st.executed - 1
    | Insn.Vop { op; w; dst; src1; src2 } -> exec_fpop st op w dst src1 src2
    | Insn.Vfma4 { w; dst; a; b; c } ->
        let v = st.vec in
        let nw = vlanes w in
        st.flops <- st.flops + (2 * nw);
        let d = Array.make 4 0. in
        for l = 0 to nw - 1 do
          d.(l) <- Float.fma v.(a).(l) v.(b).(l) v.(c).(l)
        done;
        if w = Insn.W64 then for l = 1 to 3 do d.(l) <- v.(a).(l) done;
        v.(dst) <- d
    | Insn.Vload { w; dst; src } ->
        st.loads <- st.loads + 1;
        let a = addr_of st src in
        observe ~addr:a ~bytes:(Insn.width_bits w / 8) ~store:false;
        let d = Array.make 4 0. in
        for l = 0 to vlanes w - 1 do
          d.(l) <- read_double st (a + (8 * l))
        done;
        st.vec.(dst) <- d
    | Insn.Vstore { w; src; dst } ->
        st.stores <- st.stores + 1;
        let a = addr_of st dst in
        observe ~addr:a ~bytes:(Insn.width_bits w / 8) ~store:true;
        for l = 0 to vlanes w - 1 do
          write_double st (a + (8 * l)) st.vec.(src).(l)
        done
    | Insn.Vbroadcast { w; dst; src } ->
        st.loads <- st.loads + 1;
        let a = addr_of st src in
        observe ~addr:a ~bytes:8 ~store:false;
        let x = read_double st a in
        let d = Array.make 4 0. in
        for l = 0 to max (vlanes w) 1 - 1 do
          d.(l) <- x
        done;
        (* movddup fills both 128-bit lanes *)
        if w = Insn.W128 then d.(1) <- x;
        st.vec.(dst) <- d
    | Insn.Vshuf { w; dst; src1; src2; imm } ->
        let v = st.vec in
        let d = Array.make 4 0. in
        d.(0) <- v.(src1).(imm land 1);
        d.(1) <- v.(src2).((imm lsr 1) land 1);
        if w = Insn.W256 then begin
          d.(2) <- v.(src1).(2 + ((imm lsr 2) land 1));
          d.(3) <- v.(src2).(2 + ((imm lsr 3) land 1))
        end;
        v.(dst) <- d
    | Insn.Vblend { w; dst; src1; src2; imm } ->
        let v = st.vec in
        let d = Array.make 4 0. in
        for l = 0 to vlanes w - 1 do
          d.(l) <- (if (imm lsr l) land 1 = 1 then v.(src2).(l) else v.(src1).(l))
        done;
        v.(dst) <- d
    | Insn.Vperm128 { dst; src1; src2; imm } ->
        let v = st.vec in
        let sel nib =
          if nib land 8 <> 0 then [| 0.; 0. |]
          else
            match nib land 3 with
            | 0 -> [| v.(src1).(0); v.(src1).(1) |]
            | 1 -> [| v.(src1).(2); v.(src1).(3) |]
            | 2 -> [| v.(src2).(0); v.(src2).(1) |]
            | _ -> [| v.(src2).(2); v.(src2).(3) |]
        in
        let lo = sel (imm land 0xF) and hi = sel ((imm lsr 4) land 0xF) in
        v.(dst) <- [| lo.(0); lo.(1); hi.(0); hi.(1) |]
    | Insn.Vextract128 { dst; src; lane } ->
        let v = st.vec in
        let o = lane * 2 in
        v.(dst) <- [| v.(src).(o); v.(src).(o + 1); 0.; 0. |]
    | Insn.Movq_xr { dst; src } ->
        st.vec.(dst) <- [| Int64.float_of_bits (get_gpr st src); 0.; 0.; 0. |]
    | Insn.Movri (r, v) -> set_gpr st r (Int64.of_int v)
    | Insn.Movabs (r, v) -> set_gpr st r v
    | Insn.Movrr (d, s) -> set_gpr st d (get_gpr st s)
    | Insn.Loadq (d, m) ->
        st.loads <- st.loads + 1;
        set_gpr st d (read_cell st (addr_of st m))
    | Insn.Storeq (m, s) ->
        st.stores <- st.stores + 1;
        write_cell st (addr_of st m) (get_gpr st s)
    | Insn.Addri (r, v) -> set_gpr st r (Int64.add (get_gpr st r) (Int64.of_int v))
    | Insn.Addrr (d, s) -> set_gpr st d (Int64.add (get_gpr st d) (get_gpr st s))
    | Insn.Subri (r, v) -> set_gpr st r (Int64.sub (get_gpr st r) (Int64.of_int v))
    | Insn.Subrr (d, s) -> set_gpr st d (Int64.sub (get_gpr st d) (get_gpr st s))
    | Insn.Imulrr (d, s) -> set_gpr st d (Int64.mul (get_gpr st d) (get_gpr st s))
    | Insn.Imulri (d, s, v) ->
        set_gpr st d (Int64.mul (get_gpr st s) (Int64.of_int v))
    | Insn.Shlri (r, v) -> set_gpr st r (Int64.shift_left (get_gpr st r) v)
    | Insn.Negr r -> set_gpr st r (Int64.neg (get_gpr st r))
    | Insn.Lea (d, m) -> set_gpr st d (Int64.of_int (addr_of st m))
    | Insn.Cmprr (a, b) -> st.flags <- (get_gpr st a, get_gpr st b)
    | Insn.Cmpri (a, v) -> st.flags <- (get_gpr st a, Int64.of_int v)
    | Insn.Jmp l -> pc := target l
    | Insn.Jcc (c, l) -> if cond_holds st.flags c then pc := target l
    | Insn.Push r ->
        let sp = Int64.sub (get_gpr st Reg.Rsp) 8L in
        set_gpr st Reg.Rsp sp;
        write_cell st (Int64.to_int sp) (get_gpr st r)
    | Insn.Pop r ->
        let sp = get_gpr st Reg.Rsp in
        set_gpr st r (read_cell st (Int64.to_int sp));
        set_gpr st Reg.Rsp (Int64.add sp 8L)
    | Insn.Ret -> running := false
    | Insn.Vzeroupper ->
        (* zero bits 255:128 of every vector register: lanes 2..3 *)
        Array.iter
          (fun v ->
            v.(2) <- 0.;
            v.(3) <- 0.)
          st.vec
    | Insn.Prefetch (_, m) ->
        (* software prefetch fills the cache like a load *)
        observe ~addr:(addr_of st m) ~bytes:8 ~store:false;
        st.prefetches <- st.prefetches + 1
  done;
  {
    r_executed = st.executed;
    r_flops = st.flops;
    r_loads = st.loads;
    r_stores = st.stores;
    r_prefetches = st.prefetches;
  }

(* --- high-level harness ------------------------------------------------ *)

type arg =
  | Aint of int
  | Adouble of float
  | Abuf of float array (* modified in place after the run *)

(* Call a generated kernel with System V argument passing. *)
let call ?(fuel = default_fuel) ?on_access (p : Insn.program)
    (args : arg list) : result =
  let st = create () in
  let int_regs = ref Reg.argument_gprs in
  let fp_reg = ref 0 in
  let stack_args = ref [] in
  let buffers = ref [] in
  List.iteri
    (fun i a ->
      let as_int_arg v =
        match !int_regs with
        | r :: rest ->
            int_regs := rest;
            set_gpr st r v
        | [] -> stack_args := v :: !stack_args
      in
      match a with
      | Aint n -> as_int_arg (Int64.of_int n)
      | Adouble f ->
          if !fp_reg >= 8 then err "too many double arguments";
          st.vec.(!fp_reg).(0) <- f;
          incr fp_reg
      | Abuf data ->
          let base = buffer_base i in
          load_buffer st ~base data;
          buffers := (base, data) :: !buffers;
          as_int_arg (Int64.of_int base))
    args;
  (* push stack args (right to left), then a fake return address *)
  let sp = ref stack_base in
  List.iter
    (fun v ->
      sp := !sp - 8;
      write_cell st !sp v)
    !stack_args;
  sp := !sp - 8;
  write_cell st !sp 0xDEAD_BEEFL;
  let result = run ~fuel ~sp:!sp ?on_access st p in
  List.iter (fun (base, data) -> read_back st ~base data) !buffers;
  result
