(** Cache and bandwidth model.

    Kernels are modelled as streaming computations: the achievable data
    rate is the bandwidth of the smallest cache level holding the
    working set, scaled by a utilization factor that rewards software
    prefetching (the measured effect the paper's prefetch optimization
    exists for), with the no-prefetch case further scaled by the CPU's
    hardware-prefetcher quality. *)

type level =
  | L1
  | L2
  | L3
  | DRAM

val level_name : level -> string

(** The level a working set of the given size lives in once warm. *)
val residency : Augem_machine.Arch.t -> int -> level

val raw_bandwidth : Augem_machine.Arch.t -> level -> float

(** Sustained fraction of raw bandwidth, per level and prefetch mode. *)
val utilization : Augem_machine.Arch.t -> prefetch:bool -> level -> float

(** Cycles to move [traffic] bytes of streaming data whose working set
    is [working_set] bytes. *)
val stream_cycles :
  Augem_machine.Arch.t ->
  working_set:int ->
  traffic:float ->
  prefetch:bool ->
  float

val stream_level : Augem_machine.Arch.t -> working_set:int -> level

(** {2 Goto blocking derivation}

    The cache-size-derived MC/KC/NC triple of the blocked GEMM driver
    (Goto's analysis): the KC x NR micro-panel of packed B fits in
    (half of) L1, the MC x KC packed block of A fills half of L2, and
    the KC x NC panel of B sizes against L3 when one is modelled.
    [mr]/[nr] are the register-tile dimensions the blocks must
    decompose into. *)

type blocking = {
  bl_mc : int;
  bl_kc : int;
  bl_nc : int;
}

val blocking_to_string : blocking -> string

(** The analytically-derived triple for an architecture.  [et] sets
    the element size the footprints are computed in (default f64);
    4-byte f32 elements double every derived dimension's capacity. *)
val derive_blocking :
  ?et:Augem_machine.Etype.t ->
  Augem_machine.Arch.t ->
  mr:int ->
  nr:int ->
  blocking

(** The blocking dimension of the tuner's search space: the derived
    triple first, then halved/doubled per-dimension variants that
    still satisfy the cache-capacity constraints; deduplicated. *)
val blocking_candidates :
  ?et:Augem_machine.Etype.t ->
  Augem_machine.Arch.t ->
  mr:int ->
  nr:int ->
  blocking list
