(** Cycle-level model of the generated kernels.

    The steady-state cost of the hot innermost loop is measured by
    list-scheduling replicated copies of its body on the architecture's
    execution resources (dependences, latencies, unit throughputs,
    issue width) and differencing the makespans — the software-
    pipelining estimate kernel writers use.  This captures exactly the
    effects the paper attributes wins to: FMA vs Mul+Add, 256-bit vs
    128-bit datapaths, accumulator-chain latencies, and loop
    overhead. *)

type loop_info = {
  li_label : string;
  li_body : Augem_machine.Insn.t list;
  li_flops : int;  (** per iteration *)
  li_loads : int;
  li_stores : int;
  li_load_bytes : int;
  li_store_bytes : int;
  li_prefetches : int;
  li_cycles : float;  (** steady-state cycles per iteration *)
}

(** Innermost loops of a program: label and body (including the
    back-edge compare/branch). *)
val innermost_loops :
  Augem_machine.Insn.program -> (string * Augem_machine.Insn.t list) list

(** Steady-state cycles per iteration.  [`Out_of_order] (default)
    models renamed registers and address-based memory disambiguation —
    the real Sandy Bridge / Piledriver cores; [`In_order] issues in
    program order with no renaming, which is what makes the static
    instruction scheduler measurable (the scheduling ablation). *)
val steady_cycles :
  ?pipeline_model:[ `Out_of_order | `In_order ] ->
  Augem_machine.Arch.t ->
  Augem_machine.Insn.t list ->
  float

(** [et] sets the element type flop and byte counts are taken at
    (default f64: a 256-bit FMA is 8 flops of f64, 16 of f32). *)
val analyze :
  ?pipeline_model:[ `Out_of_order | `In_order ] ->
  ?et:Augem_machine.Etype.t ->
  Augem_machine.Arch.t ->
  Augem_machine.Insn.program ->
  loop_info list

(** The hot loop (most flops per iteration, then most bytes loaded);
    memoized on the program text, pipeline model and element type. *)
val hot_loop :
  ?pipeline_model:[ `Out_of_order | `In_order ] ->
  ?et:Augem_machine.Etype.t ->
  Augem_machine.Arch.t ->
  Augem_machine.Insn.program ->
  loop_info option

(** Hot-loop flops per cycle as a fraction of machine peak. *)
val kernel_efficiency :
  ?et:Augem_machine.Etype.t ->
  Augem_machine.Arch.t ->
  Augem_machine.Insn.program ->
  float
