(** MFLOPS predictor: combines the cycle-level steady-state cost of a
    kernel's hot loop ({!Cycle_sim}) with the streaming-bandwidth bound
    of the memory system ({!Mem_model}) — the compute-roof /
    bandwidth-roof reasoning that governs dense linear algebra.

    Absolute numbers are those of the modelled microarchitectures; the
    benchmarks compare libraries on the same model, so relative
    positions are what carries over from the paper. *)

type workload =
  | W_gemm of { m : int; n : int; k : int }
  | W_gemv of { m : int; n : int }
  | W_axpy of { n : int }
  | W_dot of { n : int }

val workload_flops : workload -> float

(** Elements touched — the work unit for kernels that perform no
    arithmetic (DCOPY), whose "MFLOPS" figure is then millions of
    elements per second. *)
val workload_elements : workload -> float

type estimate = {
  e_mflops : float;
  e_compute_cycles : float;
  e_memory_cycles : float;
  e_flops : float;
  e_level : Mem_model.level;  (** residency of the working set *)
  e_cycles_per_iter : float;  (** hot loop steady state *)
  e_flops_per_iter : int;
}

exception No_hot_loop of string

(** Predict performance of a generated program on a workload.
    [pipeline_model] selects out-of-order (default) or in-order core
    modelling (see {!Cycle_sim.steady_cycles}); [et] the element type
    flops, footprints and traffic are accounted in (default f64). *)
val predict :
  ?pipeline_model:[ `Out_of_order | `In_order ] ->
  ?et:Augem_machine.Etype.t ->
  Augem_machine.Arch.t ->
  Augem_machine.Insn.program ->
  workload ->
  estimate

(** Predict the full blocked GEMM driver (packing + jc/pc/ic
    macro-kernel loops around the given micro-kernel program) under an
    explicit MC/KC/NC blocking.  Only meaningful for {!W_gemm}
    workloads (raises [Invalid_argument] otherwise).  DRAM traffic
    follows Goto's analysis: packed B moved once, the A block repacked
    once per NC pass, C touched once per KC pass; micro-kernel panel
    loads are in-cache and already inside the hot loop's cycle
    count. *)
val predict_blocked :
  ?pipeline_model:[ `Out_of_order | `In_order ] ->
  ?et:Augem_machine.Etype.t ->
  Augem_machine.Arch.t ->
  Augem_machine.Insn.program ->
  blocking:Mem_model.blocking ->
  workload ->
  estimate

(** Predict the unblocked path: the micro-kernel streaming over the
    full matrices with register tiling only, re-reading A for every
    [nr]-wide column strip.  The baseline the blocked driver is gated
    against.  The compute and memory legs serialize (no overlap):
    without blocking the operands are not cache-resident and the
    out-of-order window cannot hide DRAM miss latency.  Only
    meaningful for {!W_gemm} workloads. *)
val predict_streamed :
  ?pipeline_model:[ `Out_of_order | `In_order ] ->
  ?et:Augem_machine.Etype.t ->
  Augem_machine.Arch.t ->
  Augem_machine.Insn.program ->
  ?nr:int ->
  workload ->
  estimate
