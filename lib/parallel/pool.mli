(** A bounded domain pool with deterministic, ordered reduction.

    The tuner's candidate evaluation is embarrassingly parallel (every
    candidate is generated and scored independently), so sweeps shard
    across OCaml 5 domains.  The contract that keeps parallel sweeps
    bit-identical to sequential ones:

    - [map f items] returns results in {i item order}, regardless of
      which domain evaluated which item or in what order they finished;
    - the caller performs any order-sensitive reduction (first-seen
      maximum, failure lists) sequentially over that ordered list;
    - [f] must be pure up to its return value — it must not touch
      shared mutable state (the transformation and codegen passes
      allocate all their state per call, which is why they can run
      here).

    With [jobs = 1] (or a single item) no domain is spawned and [map]
    is exactly [List.map]. *)

(** A sensible worker count for this machine: the recommended domain
    count, at least 1. *)
val default_jobs : unit -> int

(** [map ~jobs f items] evaluates [f] over [items] on up to [jobs]
    domains (the calling domain participates, so at most [jobs - 1] are
    spawned) and returns the results in item order.

    Items are handed out dynamically (an atomic cursor), so unequal
    per-item costs balance across workers.  If one or more applications
    of [f] raise, the exception of the {i earliest item in list order}
    is re-raised with its backtrace after all workers have drained —
    also deterministic. *)
val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
