(* Bounded domain pool with deterministic ordered reduction.  See
   pool.mli for the purity contract on the mapped function. *)

let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* One result slot per item.  Each slot is written by exactly one
   worker (the atomic cursor hands every index out once) and read only
   after every worker has been joined, so the joins provide the
   happens-before edge the plain array writes need. *)
type 'b cell =
  | Pending
  | Done of 'b
  | Failed of exn * Printexc.raw_backtrace

let map ?(jobs = default_jobs ()) (f : 'a -> 'b) (items : 'a list) : 'b list =
  let n = List.length items in
  if jobs <= 1 || n <= 1 then List.map f items
  else begin
    let arr = Array.of_list items in
    let results = Array.make n Pending in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          results.(i) <-
            (match f arr.(i) with
            | v -> Done v
            | exception e -> Failed (e, Printexc.get_raw_backtrace ()));
          go ()
        end
      in
      go ()
    in
    let spawned = min (jobs - 1) (n - 1) in
    let domains = List.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
           | Pending -> assert false)
         results)
  end
