(** A persistent, bounded task queue served by a fixed set of worker
    domains — the long-lived sibling of {!Pool.map}.

    {!Pool.map} is a batch API: it spawns domains for one sweep and
    joins them before returning.  A serving runtime instead wants a
    pool that outlives any single request: workers are spawned once at
    {!create} and keep draining the queue until {!shutdown}.

    The queue is {i bounded}: at most [capacity] tasks may be queued
    (tasks currently executing on a worker do not count).  A full queue
    makes {!submit} return [false] immediately — admission control is
    the caller's job (the service layer turns it into a structured
    overload rejection), the pool never blocks a producer and never
    buffers unboundedly.

    Tasks are [unit -> unit] thunks and must not let exceptions escape;
    as a backstop, an escaping exception is caught and counted
    ({!dropped_exceptions}) rather than killing the worker.

    All operations are safe from any domain or thread. *)

type t

(** [create ~workers ~capacity ()] spawns [workers] domains (clamped to
    at least 1) that block on the queue. *)
val create : ?workers:int -> ?capacity:int -> unit -> t

(** Enqueue a task; [false] when the queue is at capacity or the pool
    is shut down (the task is dropped, never partially enqueued). *)
val submit : t -> (unit -> unit) -> bool

(** Tasks queued and not yet picked up by a worker. *)
val pending : t -> int

(** Worker count the pool was created with. *)
val workers : t -> int

(** Tasks whose thunk raised (caught by the worker backstop). *)
val dropped_exceptions : t -> int

(** Stop accepting tasks, drain the queue, and join every worker.
    Idempotent; returns once all workers have exited. *)
val shutdown : t -> unit
