(** A persistent, bounded task queue served by a {i supervised} set of
    worker domains — the long-lived sibling of {!Pool.map}.

    {!Pool.map} is a batch API: it spawns domains for one sweep and
    joins them before returning.  A serving runtime instead wants a
    pool that outlives any single request: workers are spawned once at
    {!create} and keep draining the queue until {!shutdown}.

    The queue is {i bounded}: at most [capacity] tasks may be queued
    (tasks currently executing on a worker do not count).  A full queue
    makes {!submit} return [false] immediately — admission control is
    the caller's job (the service layer turns it into a structured
    overload rejection), the pool never blocks a producer and never
    buffers unboundedly.

    Tasks are [unit -> unit] thunks and must not let exceptions escape;
    as a backstop, an escaping exception is caught and counted
    ({!dropped_exceptions}) rather than killing the worker.

    {b Supervision.}  One exception {i is} lethal:
    {!Augem_resilience.Faultpoint.Worker_kill} (raised by the
    ["taskq.worker"] fault point, or deliberately re-raised by a task
    wrapper) kills the executing worker domain, modeling a crashed
    worker.  The pool detects the death, invokes the task's
    [on_abandon] callback — so a future tied to the lost job resolves
    instead of hanging its waiters — counts it ({!deaths}), and
    respawns a replacement domain as long as the restart budget lasts
    ({!restarts} ≤ [restart_budget]).  Once the budget is exhausted the
    pool keeps running with fewer workers ({!live_workers}); admission
    control still bounds the queue.

    All operations are safe from any domain or thread. *)

type t

(** [create ~workers ~capacity ~restart_budget ()] spawns [workers]
    domains (clamped to at least 1) that block on the queue.  At most
    [restart_budget] (default 8) replacement domains are ever
    spawned. *)
val create :
  ?workers:int -> ?capacity:int -> ?restart_budget:int -> unit -> t

(** Enqueue a task; [false] when the queue is at capacity or the pool
    is shut down (the task is dropped, never partially enqueued).
    [on_abandon] fires iff the task was picked up by a worker that then
    died (before finishing it) — exactly once, from the dying worker. *)
val submit : t -> ?on_abandon:(unit -> unit) -> (unit -> unit) -> bool

(** Tasks queued and not yet picked up by a worker. *)
val pending : t -> int

(** Worker count the pool was created with. *)
val workers : t -> int

(** Workers currently alive (initial - deaths + restarts). *)
val live_workers : t -> int

val restart_budget : t -> int

(** Tasks whose thunk raised an ordinary exception (caught by the
    worker backstop). *)
val dropped_exceptions : t -> int

(** Worker domains killed (by {!Augem_resilience.Faultpoint.Worker_kill}). *)
val deaths : t -> int

(** Replacement domains spawned by the supervisor. *)
val restarts : t -> int

(** The fault-point name armed to kill a worker at task pickup. *)
val kill_point : string

(** Stop accepting tasks, drain the queue, and join every worker
    (including replacements).  Idempotent; returns once all workers
    have exited. *)
val shutdown : t -> unit
