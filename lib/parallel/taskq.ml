(* Persistent bounded task queue over supervised worker domains.  See
   taskq.mli. *)

module Faultpoint = Augem_resilience.Faultpoint

let kill_point = "taskq.worker"
let () = Faultpoint.register kill_point

type task = { run : unit -> unit; abandon : (unit -> unit) option }

type t = {
  m : Mutex.t;
  nonempty : Condition.t;
  queue : task Queue.t;
  capacity : int;
  n_workers : int;
  restart_budget : int;
  mutable stopped : bool;
  mutable exceptions : int;
  mutable deaths : int;
  mutable restarts : int;
  mutable domains : unit Domain.t list;
}

let create ?(workers = 1) ?(capacity = 64) ?(restart_budget = 8) () : t =
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      capacity = max 0 capacity;
      n_workers = max 1 workers;
      restart_budget = max 0 restart_budget;
      stopped = false;
      exceptions = 0;
      deaths = 0;
      restarts = 0;
      domains = [];
    }
  in
  (* The supervised worker: an ordinary task exception is counted and
     the worker lives on; a {!Faultpoint.Worker_kill} is fatal — the
     task's abandon callback fires (so no future is left unresolved)
     and the supervisor respawns a replacement domain, up to the
     restart budget.  The respawn happens under [t.m] so the
     stopped-check, the budget accounting and the domain-list append
     are atomic with respect to {!shutdown}. *)
  let rec worker () =
    let rec loop () =
      Mutex.lock t.m;
      while Queue.is_empty t.queue && not t.stopped do
        Condition.wait t.nonempty t.m
      done;
      match Queue.take_opt t.queue with
      | None ->
          (* stopped and drained *)
          Mutex.unlock t.m
      | Some task -> (
          Mutex.unlock t.m;
          match
            Faultpoint.hit kill_point;
            task.run ()
          with
          | () -> loop ()
          | exception Faultpoint.Worker_kill _ ->
              (match task.abandon with
              | Some f -> ( try f () with _ -> ())
              | None -> ());
              Mutex.protect t.m (fun () ->
                  t.deaths <- t.deaths + 1;
                  if (not t.stopped) && t.restarts < t.restart_budget then begin
                    t.restarts <- t.restarts + 1;
                    t.domains <- Domain.spawn worker :: t.domains
                  end)
              (* the dying worker's own loop ends here *)
          | exception _ ->
              (* the worker survives an ordinary exception, but the
                 task did not complete: a task that resolves a future
                 in-band never lets an exception escape, so whatever
                 reached here (e.g. an injected fault before the task
                 body) left that future dangling — abandon it *)
              (match task.abandon with
              | Some f -> ( try f () with _ -> ())
              | None -> ());
              Mutex.protect t.m (fun () ->
                  t.exceptions <- t.exceptions + 1);
              loop ())
    in
    loop ()
  in
  t.domains <- List.init t.n_workers (fun _ -> Domain.spawn worker);
  t

let submit (t : t) ?on_abandon (task : unit -> unit) : bool =
  Mutex.lock t.m;
  let accepted = (not t.stopped) && Queue.length t.queue < t.capacity in
  if accepted then begin
    Queue.add { run = task; abandon = on_abandon } t.queue;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.m;
  accepted

let pending (t : t) : int =
  Mutex.protect t.m (fun () -> Queue.length t.queue)

let workers (t : t) : int = t.n_workers
let restart_budget (t : t) : int = t.restart_budget

let dropped_exceptions (t : t) : int =
  Mutex.protect t.m (fun () -> t.exceptions)

let deaths (t : t) : int = Mutex.protect t.m (fun () -> t.deaths)
let restarts (t : t) : int = Mutex.protect t.m (fun () -> t.restarts)

let live_workers (t : t) : int =
  Mutex.protect t.m (fun () -> t.n_workers - t.deaths + t.restarts)

let shutdown (t : t) : unit =
  Mutex.lock t.m;
  t.stopped <- true;
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  (* join in rounds: a worker dying concurrently may have appended a
     replacement between our reads (never after [stopped] though) *)
  let rec drain () =
    let ds =
      Mutex.protect t.m (fun () ->
          let ds = t.domains in
          t.domains <- [];
          ds)
    in
    match ds with
    | [] -> ()
    | ds ->
        List.iter Domain.join ds;
        drain ()
  in
  drain ()
