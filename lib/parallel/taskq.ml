(* Persistent bounded task queue over worker domains.  See taskq.mli. *)

type t = {
  m : Mutex.t;
  nonempty : Condition.t;
  queue : (unit -> unit) Queue.t;
  capacity : int;
  n_workers : int;
  mutable stopped : bool;
  mutable exceptions : int;
  mutable domains : unit Domain.t list;
}

let create ?(workers = 1) ?(capacity = 64) () : t =
  let t =
    {
      m = Mutex.create ();
      nonempty = Condition.create ();
      queue = Queue.create ();
      capacity = max 0 capacity;
      n_workers = max 1 workers;
      stopped = false;
      exceptions = 0;
      domains = [];
    }
  in
  let worker () =
    let rec loop () =
      Mutex.lock t.m;
      while Queue.is_empty t.queue && not t.stopped do
        Condition.wait t.nonempty t.m
      done;
      match Queue.take_opt t.queue with
      | None ->
          (* stopped and drained *)
          Mutex.unlock t.m
      | Some task ->
          Mutex.unlock t.m;
          (match task () with
          | () -> ()
          | exception _ ->
              Mutex.lock t.m;
              t.exceptions <- t.exceptions + 1;
              Mutex.unlock t.m);
          loop ()
    in
    loop ()
  in
  t.domains <- List.init t.n_workers (fun _ -> Domain.spawn worker);
  t

let submit (t : t) (task : unit -> unit) : bool =
  Mutex.lock t.m;
  let accepted = (not t.stopped) && Queue.length t.queue < t.capacity in
  if accepted then begin
    Queue.add task t.queue;
    Condition.signal t.nonempty
  end;
  Mutex.unlock t.m;
  accepted

let pending (t : t) : int =
  Mutex.lock t.m;
  let n = Queue.length t.queue in
  Mutex.unlock t.m;
  n

let workers (t : t) : int = t.n_workers

let dropped_exceptions (t : t) : int =
  Mutex.lock t.m;
  let n = t.exceptions in
  Mutex.unlock t.m;
  n

let shutdown (t : t) : unit =
  Mutex.lock t.m;
  let domains = t.domains in
  t.stopped <- true;
  t.domains <- [];
  Condition.broadcast t.nonempty;
  Mutex.unlock t.m;
  List.iter Domain.join domains
