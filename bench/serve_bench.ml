(* Serving benchmark: closed-loop clients against an in-process kernel
   service, cold cache vs warm cache.

   Cold phase: one first-request per (kernel, arch) key, issued
   sequentially — every request misses both tiers and pays for a full
   tuning sweep.  Warm phase: --clients closed-loop threads each issue
   --requests requests round-robin over the same keys — every request
   is an in-memory tier hit.  The headline number is the cold/warm mean
   latency ratio; BENCH_serve.json records both distributions plus the
   server's own metrics snapshot so the artifact is self-consistent
   (requests = cold + warm + 1 stats, tiers.memory = warm count).

   --smoke shrinks the grid to two keys with one-candidate spaces for
   the @serve-smoke alias. *)

module A = Augem
module Arch = A.Machine.Arch
module Kernels = A.Ir.Kernels
module Json = A.Json
module Tuner = A.Tuner
module Service = Augem_service
module Clock = A.Jit.Clock

(* latency of one request, on the shared monotonic clock (wall-clock
   helpers live in the JIT runtime; gettimeofday is not monotonic and
   jumps under NTP slew) *)
let timed_ms f =
  let t0 = Clock.now_ns () in
  f ();
  Int64.to_float (Int64.sub (Clock.now_ns ()) t0) /. 1e6

let json_out = ref "."
let smoke = ref false
let clients_flag = ref 4
let requests_flag = ref 25

let speclist =
  [
    ("--smoke", Arg.Set smoke, "reduced grid for CI");
    ("--json-out", Arg.Set_string json_out, "DIR artifact directory");
    ("--clients", Arg.Set_int clients_flag, "N warm-phase client threads");
    ("--requests", Arg.Set_int requests_flag, "N warm requests per client");
  ]

(* one-candidate spaces keep the cold sweep cheap without changing what
   is measured (a miss still walks queue -> sweep -> store -> insert) *)
let tiny_space kernel =
  match Tuner.space_for kernel with c :: _ -> [ c ] | [] -> []

let keys () : (Kernels.name * Arch.t * Tuner.candidate list) list =
  if !smoke then
    [
      (Kernels.Axpy, Arch.sandy_bridge, tiny_space Kernels.Axpy);
      (Kernels.Dot, Arch.piledriver, tiny_space Kernels.Dot);
    ]
  else
    List.concat_map
      (fun arch ->
        List.map
          (fun k -> (k, arch, Tuner.space_for k))
          [ Kernels.Axpy; Kernels.Dot; Kernels.Scal; Kernels.Gemv ])
      [ Arch.sandy_bridge; Arch.piledriver ]

let tune_line (kernel, (arch : Arch.t), space) : string =
  Json.to_string
    (Service.Proto.request_to_json
       {
         Service.Proto.rq_id = Json.String (Kernels.name_to_string kernel);
         rq_op =
           Service.Proto.Op_tune
             {
               Service.Proto.tq_kernel = kernel;
               tq_arch = arch;
               tq_et = A.Machine.Etype.F64;
               tq_space = (if space = [] then None else Some space);
               tq_deadline_ms = None;
             };
       })

let expect_ok line =
  match Json.parse line with
  | Ok j when Json.member "ok" j = Some (Json.Bool true) -> ()
  | _ -> failwith ("serve_bench: request failed: " ^ line)

type phase = { count : int; mean_ms : float; max_ms : float }

let summarize (samples : float list) : phase =
  let n = List.length samples in
  let sum = List.fold_left ( +. ) 0. samples in
  let mx = List.fold_left Stdlib.max 0. samples in
  { count = n; mean_ms = (if n = 0 then 0. else sum /. float_of_int n);
    max_ms = mx }

let phase_json p =
  Json.Obj
    [
      ("count", Json.Int p.count);
      ("mean_ms", Json.Float p.mean_ms);
      ("max_ms", Json.Float p.max_ms);
    ]

let () =
  Arg.parse speclist
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "serve_bench [--smoke] [--json-out DIR] [--clients N] [--requests N]";
  let ks = keys () in
  let lines = List.map tune_line ks in
  let server = Service.Server.create () in
  (* cold: sequential first requests, full sweep each *)
  let cold =
    List.map
      (fun line ->
        timed_ms (fun () ->
            expect_ok (Service.Server.handle_line server line)))
      lines
  in
  (* warm: closed-loop clients over the now-resident keys *)
  let clients = max 1 !clients_flag and per_client = max 1 !requests_flag in
  let warm_m = Mutex.create () in
  let warm = ref [] in
  let client i =
    let mine = ref [] in
    for r = 0 to per_client - 1 do
      let line = List.nth lines ((i + r) mod List.length lines) in
      let ms =
        timed_ms (fun () ->
            expect_ok (Service.Server.handle_line server line))
      in
      mine := ms :: !mine
    done;
    Mutex.protect warm_m (fun () -> warm := !mine @ !warm)
  in
  let threads = List.init clients (fun i -> Thread.create client i) in
  List.iter Thread.join threads;
  let stats =
    match
      Json.parse
        (Service.Server.handle_line server {|{"id":0,"op":"stats"}|})
    with
    | Ok j -> ( match Json.member "stats" j with Some s -> s | None -> Json.Null)
    | Error _ -> Json.Null
  in
  Service.Server.drain server;
  let cold_p = summarize cold and warm_p = summarize !warm in
  let speedup =
    if warm_p.mean_ms > 0. then cold_p.mean_ms /. warm_p.mean_ms else 0.
  in
  Fmt.pr "serve bench (%s): %d keys, %d clients x %d requests@."
    (if !smoke then "smoke" else "full")
    (List.length ks) clients per_client;
  Fmt.pr "  cold  %d requests  mean %.2f ms  max %.2f ms@." cold_p.count
    cold_p.mean_ms cold_p.max_ms;
  Fmt.pr "  warm  %d requests  mean %.3f ms  max %.3f ms@." warm_p.count
    warm_p.mean_ms warm_p.max_ms;
  Fmt.pr "  warm speedup %.1fx@." speedup;
  let artifact =
    Json.Obj
      [
        ("mode", Json.String (if !smoke then "smoke" else "full"));
        ( "kernels",
          Json.List
            (List.map
               (fun (k, (a : Arch.t), _) ->
                 Json.String (Kernels.name_to_string k ^ "@" ^ a.Arch.name))
               ks) );
        ("clients", Json.Int clients);
        ("requests_per_client", Json.Int per_client);
        ("cold", phase_json cold_p);
        ("warm", phase_json warm_p);
        ("speedup", Json.Float speedup);
        ("stats", stats);
      ]
  in
  let path = Filename.concat !json_out "BENCH_serve.json" in
  Json.to_file path artifact;
  Fmt.pr "wrote %s@." path
