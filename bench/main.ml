(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (section 5).

     Table 5   platform configurations
     Fig 18a/b DGEMM  MFLOPS vs size, 4 libraries, both CPUs
     Fig 19a/b DGEMV
     Fig 20a/b DAXPY
     Fig 21a/b DDOT
     Table 6   SYMM/SYRK/SYR2K/TRMM/TRSM/GER average MFLOPS

   For each experiment the same series/rows the paper reports are
   printed, followed by the mean speedup summary (the numbers quoted in
   the paper's prose), and a machine-readable BENCH_<exp>.json artifact
   is written next to the tables (--json-out picks the directory), so
   every revision leaves a perf trajectory to compare against.  A timed
   tuning-sweep section measures the sweep's wall-clock and
   candidates/sec at --jobs 1 and --jobs N (BENCH_sweep.json).  A
   Bechamel micro-benchmark of the code path behind each experiment
   runs at the end (one Test.make per table and figure).

   --smoke runs a reduced grid (small Figure 18 + one small sweep,
   JSON emitted and validated by the @bench-smoke alias) for CI.

   Numbers come from the cycle-level + bandwidth model of the two
   modelled CPUs (see DESIGN.md): absolute values are the model's, the
   cross-library shape is the reproduction target.  EXPERIMENTS.md
   records paper-vs-measured for every experiment. *)

module A = Augem
module Arch = A.Machine.Arch
module Kernels = A.Ir.Kernels
module Lib = A.Library
module Perf = A.Sim.Perf
module Report = A.Report
module Json = A.Json
module Tuner = A.Tuner
module Etype = A.Machine.Etype
module Routine = Augem_baselines.Routine_model

let archs = [ Arch.sandy_bridge; Arch.piledriver ]

(* --- flags --------------------------------------------------------------- *)

let json_out = ref "."
let jobs_flag = ref (A.Pool.default_jobs ())
let smoke = ref false

let write_json name (v : Json.t) =
  let path = Filename.concat !json_out ("BENCH_" ^ name ^ ".json") in
  Json.to_file path v;
  Fmt.pr "wrote %s@." path

let range lo hi step =
  let rec go x acc = if x > hi then List.rev acc else go (x + step) (x :: acc) in
  go lo []

(* --- Table 5 ------------------------------------------------------------- *)

let table5 () =
  Report.pp_table Fmt.stdout ~title:"Table 5: Platforms Configurations"
    ~header:[ "Intel Sandy Bridge"; "AMD Piledriver" ]
    (List.map (fun (l, a, b) -> (l, [ a; b ])) (Arch.table5_rows ()))

(* --- figure sweeps --------------------------------------------------------- *)

let libraries_for arch = List.map (fun id -> (id, Lib.display_name arch id)) Lib.all

let sweep ~(kernel : Kernels.name) ~(workload : int -> Perf.workload)
    ~(sizes : int list) (arch : Arch.t) : Report.series list =
  List.map
    (fun (id, label) ->
      {
        Report.s_label = label;
        s_points =
          List.map (fun s -> (s, Lib.predict id arch kernel (workload s))) sizes;
      })
    (libraries_for arch)

let json_of_series (s : Report.series) : Json.t =
  Json.Obj
    [
      ("label", Json.String s.Report.s_label);
      ( "points",
        Json.List
          (List.map
             (fun (x, y) ->
               Json.Obj [ ("size", Json.Int x); ("mflops", Json.Float y) ])
             s.Report.s_points) );
      ( "mean_mflops",
        (* an empty series has no mean: Null, not a fake 0. *)
        match Report.series_mean s with
        | Some m -> Json.Float m
        | None -> Json.Null );
    ]

(* The paper's prose numbers: AUGEM's mean over a figure vs each other
   library's. *)
let json_of_speedups ~(baseline : string) (series : Report.series list) :
    Json.t =
  match
    List.find_opt (fun s -> String.equal s.Report.s_label baseline) series
  with
  | None -> Json.List []
  | Some base -> (
      match Report.series_mean base with
      | None -> Json.List []
      | Some b ->
          Json.List
            (List.filter_map
               (fun s ->
                 if String.equal s.Report.s_label baseline then None
                 else
                   match Report.series_mean s with
                   | Some m when m > 0. ->
                       Some
                         (Json.Obj
                            [
                              ("baseline", Json.String baseline);
                              ("vs", Json.String s.Report.s_label);
                              ( "percent",
                                Json.Float ((b /. m -. 1.) *. 100.) );
                            ])
                   | Some _ | None -> None)
               series))

let figure ~num ~title ~kernel ~workload ~sizes ~x_label : Json.t =
  let arch_objs =
    List.mapi
      (fun i arch ->
        let sub = if i = 0 then "a" else "b" in
        let series = sweep ~kernel ~workload ~sizes arch in
        Report.pp_series_table Fmt.stdout
          ~title:
            (Printf.sprintf "Figure %d%s: %s on %s (MFLOPS)" num sub title
               arch.Arch.model)
          ~x_label series;
        Report.pp_bars Fmt.stdout series;
        Fmt.pr "mean speedups (paper quotes these):@.";
        Report.pp_speedups Fmt.stdout ~baseline:"AUGEM" series;
        Fmt.pr "@.";
        Json.Obj
          [
            ("arch", Json.String arch.Arch.name);
            ("model", Json.String arch.Arch.model);
            ("series", Json.List (List.map json_of_series series));
            ("speedups", json_of_speedups ~baseline:"AUGEM" series);
          ])
      archs
  in
  Json.Obj
    [
      ("experiment", Json.String (Printf.sprintf "fig%d" num));
      ("title", Json.String title);
      ("kernel", Json.String (Kernels.name_to_string kernel));
      ("x_label", Json.String x_label);
      ("arches", Json.List arch_objs);
    ]

let fig18 ?(sizes = range 1024 6144 256) () =
  figure ~num:18 ~title:"DGEMM (m=n, k=256)" ~kernel:Kernels.Gemm
    ~workload:(fun m -> Perf.W_gemm { m; n = m; k = 256 })
    ~sizes ~x_label:"m=n"

let fig19 () =
  figure ~num:19 ~title:"DGEMV (m=n)" ~kernel:Kernels.Gemv
    ~workload:(fun m -> Perf.W_gemv { m; n = m })
    ~sizes:(range 2048 5120 256) ~x_label:"m=n"

let fig20 () =
  figure ~num:20 ~title:"DAXPY" ~kernel:Kernels.Axpy
    ~workload:(fun n -> Perf.W_axpy { n })
    ~sizes:(range 100_000 200_000 5_000) ~x_label:"n"

let fig21 () =
  figure ~num:21 ~title:"DDOT" ~kernel:Kernels.Dot
    ~workload:(fun n -> Perf.W_dot { n })
    ~sizes:(range 100_000 200_000 5_000) ~x_label:"n"

(* --- full-matrix blocked GEMM sweep -------------------------------------- *)

module Mem_model = A.Sim.Mem_model

(* The full blocked DGEMM (generated packing + macro-kernel loop nest
   around the tuned micro-kernel) against the unblocked
   micro-kernel-streaming path, on square m=n=k problems.  Before
   reporting model numbers, the generated driver is differentially
   checked on the functional simulator against [dgemm_naive] over
   shapes that force multi-block trips and remainder blocks (a tiny
   blocking override makes small matrices span many blocks — the
   blocking is a runtime parameter of the generated code). *)

let full_sizes_default = [ 256; 512; 1024; 1536; 2048 ]

(* Awkward shapes: primes, one block exactly, one block + remainder,
   unit.  With blocking 8/6/4 every one of these exercises remainder
   blocks in at least one dimension. *)
let full_check_shapes = [ (17, 13, 11); (8, 6, 6); (9, 5, 7); (1, 1, 1) ]
let full_check_blocking = { Mem_model.bl_mc = 8; bl_kc = 6; bl_nc = 4 }

let full_matrix ?(et = Etype.F64) ?(sizes = full_sizes_default) () : Json.t =
  let gemm_name = String.uppercase_ascii (Etype.blas_prefix et) ^ "GEMM" in
  Fmt.pr
    "== Full-matrix blocked %s (m=n=k; generated packing + macro-kernel) \
     ==@." gemm_name;
  let largest = List.fold_left max 0 sizes in
  let arch_objs =
    List.map
      (fun (arch : Arch.t) ->
        let plan = A.Blocked.plan ~et ~jobs:!jobs_flag arch in
        (* correctness first: the generated blocked driver on the
           simulator vs the reference BLAS, remainder shapes included *)
        let diffs =
          List.map
            (fun (m, n, k) ->
              let r =
                A.Blocked.check ~blocking:full_check_blocking plan ~m ~n ~k ()
              in
              (match r with
              | Ok _ -> ()
              | Error e ->
                  Fmt.pr "BLOCKED DIFFERENTIAL FAIL on %s: %s@." arch.Arch.name
                    e;
                  exit 1);
              Json.Obj
                [
                  ("m", Json.Int m); ("n", Json.Int n); ("k", Json.Int k);
                  ("ok", Json.Bool true);
                ])
            full_check_shapes
        in
        let point f s =
          (s, (f plan (Perf.W_gemm { m = s; n = s; k = s })).Perf.e_mflops)
        in
        let blocked =
          {
            Report.s_label = "AUGEM blocked";
            s_points = List.map (point A.Blocked.predict) sizes;
          }
        in
        let streamed =
          {
            Report.s_label = "unblocked (streamed)";
            s_points = List.map (point A.Blocked.predict_streamed) sizes;
          }
        in
        let series = [ blocked; streamed ] in
        Report.pp_series_table Fmt.stdout
          ~title:
            (Printf.sprintf "Blocked %s (m=n=k) on %s (MFLOPS)" gemm_name
               arch.Arch.model)
          ~x_label:"m=n=k" series;
        Report.pp_bars Fmt.stdout series;
        let at s size =
          match List.assoc_opt size s.Report.s_points with
          | Some v -> v
          | None -> 0.
        in
        let ratio =
          let s = at streamed largest in
          if s > 0. then at blocked largest /. s else 0.
        in
        Fmt.pr
          "blocking %s (mr=%d nr=%d, %s); blocked/streamed at m=n=k=%d: \
           %.1fx@.@."
          (Mem_model.blocking_to_string plan.A.Blocked.pl_blocking)
          plan.A.Blocked.pl_mr plan.A.Blocked.pl_nr
          (A.Transform.Pipeline.config_to_string
             plan.A.Blocked.pl_micro_config.Tuner.cand_config)
          largest ratio;
        Json.Obj
          [
            ("arch", Json.String arch.Arch.name);
            ("model", Json.String arch.Arch.model);
            ( "blocking",
              Json.Obj
                [
                  ("mc", Json.Int plan.A.Blocked.pl_blocking.Mem_model.bl_mc);
                  ("kc", Json.Int plan.A.Blocked.pl_blocking.Mem_model.bl_kc);
                  ("nc", Json.Int plan.A.Blocked.pl_blocking.Mem_model.bl_nc);
                ] );
            ("mr", Json.Int plan.A.Blocked.pl_mr);
            ("nr", Json.Int plan.A.Blocked.pl_nr);
            ( "micro_config",
              Json.String
                (A.Transform.Pipeline.config_to_string
                   plan.A.Blocked.pl_micro_config.Tuner.cand_config) );
            ("series", Json.List (List.map json_of_series series));
            ("speedup_at_largest", Json.Float ratio);
            ("differential", Json.List diffs);
          ])
      archs
  in
  Json.Obj
    [
      ( "experiment",
        Json.String
          (match et with Etype.F64 -> "full" | Etype.F32 -> "full_f32") );
      ("precision", Json.String (Etype.name et));
      ( "title",
        Json.String
          (Printf.sprintf
             "Full-matrix blocked %s: generated packing + macro-kernel vs \
              unblocked streaming" gemm_name) );
      ("x_label", Json.String "m=n=k");
      ("largest", Json.Int largest);
      ("arches", Json.List arch_objs);
    ]

(* --- native wall-clock blocked GEMM ---------------------------------------- *)

module Native_check = A.Native_check
module Native_blocked = A.Native_blocked
module Clock = A.Jit.Clock

(* Measured (not modelled) MFLOPS: the blocked GEMM driver is JIT-
   compiled to executable memory and timed on this CPU with the
   monotonic-clock helper (warmup + min-of-N).  Results only count
   after the guarded path passes: asmcheck lint, CPU feature check,
   and a differential run against the simulated blocked driver and the
   reference BLAS on remainder-heavy shapes.  When the host CPU lacks
   the required SIMD features the whole experiment is skipped with an
   explicit marker, never silently. *)

let native_sizes_default = [ 256; 512; 1024 ]

(* Pick the first modelled architecture whose generated code this host
   can actually run (piledriver wants FMA4, which modern x86 lacks). *)
let native_arch_for ~(et : Etype.t) : (Arch.t * A.Blocked.plan, string) result
    =
  let rec go = function
    | [] -> Error "no modelled architecture is runnable on this host"
    | arch :: rest -> (
        let plan = A.Blocked.plan ~et ~jobs:!jobs_flag arch in
        match Native_blocked.load plan with
        | Native_check.Ready np ->
            Native_blocked.release np;
            Ok (arch, plan)
        | Native_check.Unsupported _ | Native_check.Rejected _ -> go rest)
  in
  (* prefer the AVX2+FMA3 machine: it is the closest model of a modern
     host and exercises the widest encoder surface *)
  go (Arch.haswell :: archs)

let native_precision ~(sizes : int list) (et : Etype.t) : Json.t =
  let gemm_name = String.uppercase_ascii (Etype.blas_prefix et) ^ "GEMM" in
  match native_arch_for ~et with
  | Error m ->
      Fmt.pr "native %s: skipped (%s)@." gemm_name m;
      Json.Obj
        [
          ("precision", Json.String (Etype.name et));
          ("name", Json.String gemm_name);
          ("skipped", Json.Bool true);
          ("reason", Json.String m);
        ]
  | Ok (arch, plan) -> (
      match Native_blocked.load plan with
      | Native_check.Unsupported m | Native_check.Rejected m ->
          Fmt.pr "native %s: skipped (%s)@." gemm_name m;
          Json.Obj
            [
              ("precision", Json.String (Etype.name et));
              ("name", Json.String gemm_name);
              ("skipped", Json.Bool true);
              ("reason", Json.String m);
            ]
      | Native_check.Ready np ->
          (* differential gate before any timing: remainder-heavy shapes
             through native vs simulated-blocked vs reference BLAS *)
          let diffs =
            List.map
              (fun (m, n, k) ->
                (match Native_blocked.check np ~m ~n ~k () with
                | Ok () -> ()
                | Error e ->
                    Fmt.pr "NATIVE DIFFERENTIAL FAIL (%s %s): %s@." gemm_name
                      arch.Arch.name e;
                    exit 1);
                Json.Obj
                  [
                    ("m", Json.Int m); ("n", Json.Int n); ("k", Json.Int k);
                    ("ok", Json.Bool true);
                  ])
              [ (37, 29, 23); (8, 6, 6); (1, 1, 1) ]
          in
          let points =
            List.map
              (fun s ->
                let b = Native_blocked.time_gemm np ~m:s ~n:s ~k:s () in
                let predicted =
                  (A.Blocked.predict plan (Perf.W_gemm { m = s; n = s; k = s }))
                    .Perf.e_mflops
                in
                Fmt.pr
                  "%-6s %6d  measured %9.0f MFLOPS  (model %9.0f; min %.4g s \
                   over %d)@."
                  gemm_name s b.Native_blocked.nb_mflops predicted
                  b.Native_blocked.nb_timing.Clock.t_min_s
                  b.Native_blocked.nb_timing.Clock.t_runs;
                Json.Obj
                  [
                    ("size", Json.Int s);
                    ("mflops", Json.Float b.Native_blocked.nb_mflops);
                    ("predicted_mflops", Json.Float predicted);
                    ("runs", Json.Int b.Native_blocked.nb_timing.Clock.t_runs);
                    ("min_s", Json.Float b.Native_blocked.nb_timing.Clock.t_min_s);
                    ("mean_s", Json.Float b.Native_blocked.nb_timing.Clock.t_mean_s);
                    ("max_s", Json.Float b.Native_blocked.nb_timing.Clock.t_max_s);
                  ])
              sizes
          in
          Native_blocked.release np;
          Json.Obj
            [
              ("precision", Json.String (Etype.name et));
              ("name", Json.String gemm_name);
              ("skipped", Json.Bool false);
              ("arch", Json.String arch.Arch.name);
              ( "blocking",
                Json.Obj
                  [
                    ("mc", Json.Int plan.A.Blocked.pl_blocking.Mem_model.bl_mc);
                    ("kc", Json.Int plan.A.Blocked.pl_blocking.Mem_model.bl_kc);
                    ("nc", Json.Int plan.A.Blocked.pl_blocking.Mem_model.bl_nc);
                  ] );
              ("differential", Json.List diffs);
              ("points", Json.List points);
            ])

let native_bench ?(sizes = native_sizes_default) () : Json.t =
  Fmt.pr "== Native blocked GEMM: measured wall-clock MFLOPS ==@.";
  let host = Native_check.host_features () in
  Fmt.pr "host: %s@."
    (String.concat " "
       (List.map (fun (n, b) -> Printf.sprintf "%s=%b" n b) host));
  let host_json =
    Json.Obj (List.map (fun (n, b) -> (n, Json.Bool b)) host)
  in
  if not (Native_check.host_supported ()) then begin
    Fmt.pr "native bench: skipped (host CPU lacks SSE2+AVX)@.@.";
    Json.Obj
      [
        ("experiment", Json.String "native");
        ("skipped", Json.Bool true);
        ("reason", Json.String "host CPU lacks SSE2+AVX");
        ("host", host_json);
      ]
  end
  else begin
    let precisions =
      List.map (native_precision ~sizes) [ Etype.F64; Etype.F32 ]
    in
    Fmt.pr "@.";
    Json.Obj
      [
        ("experiment", Json.String "native");
        ("skipped", Json.Bool false);
        ("host", host_json);
        ("largest", Json.Int (List.fold_left max 0 sizes));
        ("precisions", Json.List precisions);
      ]
  end

(* --- Table 6 ------------------------------------------------------------- *)

let table6 () : Json.t =
  let arch_objs =
    List.map
      (fun arch ->
        let libs = libraries_for arch in
        let cells =
          List.map
            (fun r ->
              ( r,
                List.map (fun (id, _) -> (id, Routine.average id arch r)) libs
              ))
            Routine.all
        in
        Report.pp_table Fmt.stdout
          ~title:
            (Printf.sprintf
               "Table 6: AUGEM vs other BLAS libraries on %s (Mflops, mean)"
               arch.Arch.model)
          ~header:(List.map snd libs)
          (List.map
             (fun (r, row) ->
               ( Routine.name r,
                 List.map (fun (_, v) -> Printf.sprintf "%.2f" v) row ))
             cells);
        Fmt.pr "@.";
        Json.Obj
          [
            ("arch", Json.String arch.Arch.name);
            ("model", Json.String arch.Arch.model);
            ( "rows",
              Json.List
                (List.map
                   (fun (r, row) ->
                     Json.Obj
                       [
                         ("routine", Json.String (Routine.name r));
                         ( "mean_mflops",
                           Json.Obj
                             (List.map
                                (fun (id, v) ->
                                  (Lib.display_name arch id, Json.Float v))
                                row) );
                       ])
                   cells) );
          ])
      archs
  in
  Json.Obj
    [
      ("experiment", Json.String "table6");
      ("title", Json.String "AUGEM vs other BLAS libraries (Mflops, mean)");
      ("arches", Json.List arch_objs);
    ]

(* --- timed tuning sweep ---------------------------------------------------- *)

(* Fresh (unmemoized) sweeps over (arch, kernel) pairs, timed at
   jobs=1 and at the requested job count: the ROADMAP's perf
   trajectory for the tuner itself.  Results are checked identical
   across job counts — the parallel sweep's determinism contract,
   enforced here on every bench run, not just in the test suite. *)
let tuning_sweep ~(jobs : int) (pairs : (Arch.t * Kernels.name) list) : Json.t
    =
  Fmt.pr "== Tuning sweep: wall-clock and candidates/sec ==@.";
  let time f =
    let t0 = Clock.now_s () in
    let r = f () in
    (r, Clock.now_s () -. t0)
  in
  let run_all jobs =
    List.map (fun (arch, k) -> Tuner.tune ~jobs arch k) pairs
  in
  let seq_results, seq_wall = time (fun () -> run_all 1) in
  let candidates =
    List.fold_left (fun acc r -> acc + r.Tuner.visited) 0 seq_results
  in
  let par_results, par_wall =
    if jobs > 1 then time (fun () -> run_all jobs)
    else (seq_results, seq_wall)
  in
  (* determinism gate: identical winners, scores and histograms *)
  List.iteri
    (fun i (seq, par) ->
      let arch, k = List.nth pairs i in
      if
        not
          (seq.Tuner.best = par.Tuner.best
          && seq.Tuner.best_score = par.Tuner.best_score
          && seq.Tuner.failure_histogram = par.Tuner.failure_histogram)
      then begin
        Fmt.pr "DETERMINISM FAIL: %s/%s differs between jobs=1 and jobs=%d@."
          arch.Arch.name (Kernels.name_to_string k) jobs;
        exit 1
      end)
    (List.combine seq_results par_results);
  Fmt.pr "%-14s %-8s %10s %10s %9s  %s@." "arch" "kernel" "visited"
    "discarded" "MFLOPS" "best configuration";
  List.iter2
    (fun (arch, k) r ->
      Fmt.pr "%-14s %-8s %10d %10d %9.0f  %s@." arch.Arch.name
        (Kernels.name_to_string k) r.Tuner.visited r.Tuner.discarded
        r.Tuner.best_score
        (A.Transform.Pipeline.config_to_string
           r.Tuner.best.Tuner.cand_config))
    pairs seq_results;
  let rate wall = float_of_int candidates /. Float.max wall 1e-9 in
  let timing jobs wall =
    Fmt.pr "jobs=%-2d  %d candidates in %.3f s  (%.1f candidates/sec)@." jobs
      candidates wall (rate wall);
    Json.Obj
      [
        ("jobs", Json.Int jobs);
        ("wall_s", Json.Float wall);
        ("candidates", Json.Int candidates);
        ("candidates_per_sec", Json.Float (rate wall));
      ]
  in
  let timings =
    if jobs > 1 then [ timing 1 seq_wall; timing jobs par_wall ]
    else [ timing 1 seq_wall ]
  in
  let speedup = seq_wall /. Float.max par_wall 1e-9 in
  if jobs > 1 then
    Fmt.pr "parallel sweep speedup (jobs=%d over jobs=1): %.2fx@." jobs
      speedup;
  Fmt.pr "@.";
  Json.Obj
    [
      ("experiment", Json.String "sweep");
      ("jobs", Json.Int jobs);
      ( "runs",
        Json.List
          (List.map2
             (fun (arch, k) r ->
               Json.Obj
                 [
                   ("arch", Json.String arch.Arch.name);
                   ("kernel", Json.String (Kernels.name_to_string k));
                   ("visited", Json.Int r.Tuner.visited);
                   ("discarded", Json.Int r.Tuner.discarded);
                   ("fell_back", Json.Bool r.Tuner.fell_back);
                   ( "best_config",
                     Json.String
                       (A.Transform.Pipeline.config_to_string
                          r.Tuner.best.Tuner.cand_config) );
                   ("best_mflops", Json.Float r.Tuner.best_score);
                 ])
             pairs seq_results) );
      ("timings", Json.List timings);
      ("speedup", Json.Float speedup);
    ]

let all_pairs () =
  List.concat_map
    (fun arch ->
      List.map (fun k -> (arch, k))
        Kernels.[ Gemm; Gemv; Axpy; Dot; Ger; Scal; Copy ])
    archs

(* --- correctness gate ------------------------------------------------------ *)

(* Before reporting performance, re-verify every library kernel pair on
   the functional simulator.  A benchmark of wrong code is meaningless. *)
let verify_everything () =
  let failures = ref 0 and total = ref 0 in
  List.iter
    (fun arch ->
      List.iter
        (fun kernel ->
          List.iter
            (fun id ->
              incr total;
              let _, prog = Lib.generate id arch kernel in
              let o = A.Harness.verify kernel prog in
              if not o.A.Harness.ok then begin
                incr failures;
                Fmt.pr "VERIFY FAIL: %s %s on %s: %s@."
                  (Lib.display_name arch id)
                  (Kernels.name_to_string kernel)
                  arch.Arch.name o.A.Harness.detail
              end)
            Lib.all)
        Kernels.[ Gemm; Gemv; Axpy; Dot; Ger ])
    archs;
  if !failures = 0 then
    Fmt.pr
      "verification gate: all %d library/kernel/arch combinations match the \
       reference BLAS on the functional simulator@."
      !total
  else exit 1

(* --- ablations -------------------------------------------------------------- *)

(* Each design choice the paper (and DESIGN.md) credits is switched off
   in isolation and the predicted performance re-measured. *)

let ablations () =
  Fmt.pr "== Ablations (AUGEM design choices, predicted MFLOPS) ==@.";
  let pipeline = A.Transform.Pipeline.default in
  let gen ?opts arch config kernel =
    (A.generate ?opts ~arch ~config kernel).A.g_program
  in
  let gemm_w = Perf.W_gemm { m = 4096; n = 4096; k = 256 } in
  let axpy_w = Perf.W_axpy { n = 150_000 } in
  let dot_w = Perf.W_dot { n = 150_000 } in
  let pf d = Some { A.Transform.Prefetch.pf_distance = d; pf_stores = true } in
  List.iter
    (fun arch ->
      Fmt.pr "--- %s ---@." arch.Arch.name;
      let p est = est.Perf.e_mflops in
      (* 1. register blocking (unroll&jam) *)
      let blocked = gen arch { pipeline with jam = [ ("j", 4); ("i", 8) ] } Kernels.Gemm in
      let scalar1 = gen arch { pipeline with jam = [ ("j", 1); ("i", 1) ] } Kernels.Gemm in
      Fmt.pr "%-44s %8.0f -> %8.0f@." "gemm: 1x1 -> 4x8 register blocking"
        (p (Perf.predict arch scalar1 gemm_w))
        (p (Perf.predict arch blocked gemm_w));
      (* 2. software prefetch (Level-1, streaming) *)
      let axpy_pf = gen arch { pipeline with inner_unroll = Some ("i", 8); prefetch = pf 8 } Kernels.Axpy in
      let axpy_nopf = gen arch { pipeline with inner_unroll = Some ("i", 8); prefetch = None } Kernels.Axpy in
      Fmt.pr "%-44s %8.0f -> %8.0f@." "axpy: without -> with software prefetch"
        (p (Perf.predict arch axpy_nopf axpy_w))
        (p (Perf.predict arch axpy_pf axpy_w));
      (* 3. reduction accumulator expansion (DOT) *)
      let dot_chain = gen arch { pipeline with inner_unroll = Some ("i", 8) } Kernels.Dot in
      let dot_exp = gen arch { pipeline with inner_unroll = Some ("i", 8); expand_reduction = Some 8 } Kernels.Dot in
      Fmt.pr "%-44s %8.0f -> %8.0f@." "dot: serial chain -> expanded accumulators"
        (p (Perf.predict arch dot_chain dot_w))
        (p (Perf.predict arch dot_exp dot_w));
      (* 4. FMA instruction selection *)
      (if arch.Arch.fma <> Arch.No_fma then begin
         let no_fma = { arch with Arch.name = arch.Arch.name ^ "-nofma"; fma = Arch.No_fma } in
         let with_fma = gen arch { pipeline with jam = [ ("j", 4); ("i", 8) ] } Kernels.Gemm in
         let without = gen no_fma { pipeline with jam = [ ("j", 4); ("i", 8) ] } Kernels.Gemm in
         Fmt.pr "%-44s %8.0f -> %8.0f@." "gemm: Mul+Add -> FMA3 selection"
           (p (Perf.predict no_fma without gemm_w))
           (p (Perf.predict arch with_fma gemm_w))
       end);
      (* 5. static instruction scheduling (on an in-order pipe) *)
      let cfg28 = { pipeline with jam = [ ("j", 2); ("i", 8) ] } in
      let unsched =
        A.Codegen.Emit.generate ~arch
          (A.Transform.Pipeline.apply (Kernels.kernel_of_name Kernels.Gemm) cfg28)
      in
      let sched = A.Codegen.Schedule.run arch unsched in
      let io = `In_order in
      Fmt.pr "%-44s %8.0f -> %8.0f   (in-order pipe model)@."
        "gemm: unscheduled -> list-scheduled"
        (p (Perf.predict ~pipeline_model:io arch unsched gemm_w))
        (p (Perf.predict ~pipeline_model:io arch sched gemm_w));
      (* 6. Vdup vs Shuf vectorization on the packed-B GEMM (W128) *)
      let packed_cfg = { pipeline with jam = [ ("j", 2); ("i", 2) ] } in
      let optimized = A.Transform.Pipeline.apply A.Ir.Kernels.gemm_packed packed_cfg in
      let make prefer =
        let opts = { A.Codegen.Emit.prefer; max_width = Some A.Machine.Insn.W128 } in
        A.Codegen.Schedule.run arch (A.Codegen.Emit.generate ~arch ~opts optimized)
      in
      let vdup = make A.Codegen.Plan.Prefer_auto in
      let shuf = make A.Codegen.Plan.Prefer_shuf in
      Fmt.pr "%-44s %8.0f vs %8.0f@." "packed gemm (128-bit): Vdup vs Shuf method"
        (p (Perf.predict arch vdup gemm_w))
        (p (Perf.predict arch shuf gemm_w));
      Fmt.pr "@.")
    archs

(* --- portability ------------------------------------------------------------ *)

(* The paper's thesis: the same simple C retargets to new
   architectures with zero manual work.  Beyond the two evaluation
   CPUs, the tuner and instruction selector handle a Haswell-class
   machine (AVX2, dual 256-bit FMA) the framework was never written
   for. *)
let portability () =
  Fmt.pr "== Portability: tuned DGEMM across architectures ==@.";
  Fmt.pr "%-14s %-34s %10s %10s  %s@." "arch" "model" "MFLOPS" "peak"
    "tuned configuration";
  List.iter
    (fun (arch : Arch.t) ->
      let g = A.tuned ~arch Kernels.Gemm in
      let v = A.verify g in
      if not v.A.Harness.ok then begin
        Fmt.pr "VERIFY FAIL on %s@." arch.Arch.name;
        exit 1
      end;
      let est =
        A.predict g (Perf.W_gemm { m = 4096; n = 4096; k = 256 })
      in
      Fmt.pr "%-14s %-34s %10.0f %10.0f  %s@." arch.Arch.name arch.Arch.model
        est.Perf.e_mflops (Arch.peak_mflops arch)
        (A.Transform.Pipeline.config_to_string g.A.g_config))
    Arch.extended;
  Fmt.pr "@."

(* --- Bechamel micro-benchmarks --------------------------------------------- *)

let bechamel_tests () =
  let open Bechamel in
  let snb = Arch.sandy_bridge in
  (* warm the generation caches so the benches measure the modelled path *)
  List.iter
    (fun k -> List.iter (fun id -> ignore (Lib.generate id snb k)) Lib.all)
    Kernels.[ Gemm; Gemv; Axpy; Dot ];
  let point kernel workload =
    Staged.stage (fun () ->
        List.iter
          (fun id -> ignore (Lib.predict id snb kernel workload))
          Lib.all)
  in
  [
    Test.make ~name:"table5:platform-rows"
      (Staged.stage (fun () -> ignore (Arch.table5_rows ())));
    Test.make ~name:"fig18:dgemm-point"
      (point Kernels.Gemm (Perf.W_gemm { m = 4096; n = 4096; k = 256 }));
    Test.make ~name:"fig19:dgemv-point"
      (point Kernels.Gemv (Perf.W_gemv { m = 4096; n = 4096 }));
    Test.make ~name:"fig20:daxpy-point"
      (point Kernels.Axpy (Perf.W_axpy { n = 150_000 }));
    Test.make ~name:"fig21:ddot-point"
      (point Kernels.Dot (Perf.W_dot { n = 150_000 }));
    Test.make ~name:"table6:routine-point"
      (Staged.stage (fun () ->
           ignore (Routine.predict Lib.AUGEM snb Routine.SYMM ~m:2048 ~k:256)));
    (* the pipeline itself, end to end *)
    Test.make ~name:"pipeline:source-to-asm"
      (Staged.stage (fun () ->
           let cfg =
             { A.Transform.Pipeline.default with jam = [ ("j", 2); ("i", 8) ] }
           in
           ignore (A.generate ~arch:snb ~config:cfg Kernels.Gemm)));
    Test.make ~name:"simulator:gemm-microkernel"
      (Staged.stage
         (let g = A.tuned ~arch:snb Kernels.Gemm in
          fun () -> ignore (A.Harness.verify_gemm g.A.g_program)));
  ]

let run_bechamel () =
  let open Bechamel in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  Fmt.pr "== Bechamel micro-benchmarks (one per table/figure) ==@.";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Fmt.pr "%-30s %14.1f ns/run@." name est
          | _ -> Fmt.pr "%-30s (no estimate)@." name)
        results)
    (bechamel_tests ())

(* --- main ------------------------------------------------------------------ *)

let run_full () =
  verify_everything ();
  Fmt.pr "@.";
  table5 ();
  Fmt.pr "@.";
  write_json "fig18" (fig18 ());
  write_json "fig19" (fig19 ());
  write_json "fig20" (fig20 ());
  write_json "fig21" (fig21 ());
  write_json "full" (full_matrix ());
  write_json "full_f32" (full_matrix ~et:Etype.F32 ());
  write_json "table6" (table6 ());
  write_json "sweep" (tuning_sweep ~jobs:!jobs_flag (all_pairs ()));
  write_json "native" (native_bench ());
  ablations ();
  portability ();
  run_bechamel ()

(* Reduced run for CI (@bench-smoke): a small Figure 18 grid and one
   small sweep, emitting the same JSON artifacts the full run does. *)
let run_smoke () =
  write_json "fig18" (fig18 ~sizes:[ 1024; 1536 ] ());
  write_json "sweep"
    (tuning_sweep ~jobs:!jobs_flag
       [ (Arch.sandy_bridge, Kernels.Axpy); (Arch.piledriver, Kernels.Dot) ])

(* Reduced blocked-GEMM run for CI (@blocked-smoke): the differential
   gate on the simulator plus a small model sweep, at both precisions,
   emitting the same BENCH_full.json / BENCH_full_f32.json the full run
   does. *)
let run_blocked_smoke () =
  let sizes = [ 256; 512; 1024 ] in
  write_json "full" (full_matrix ~sizes ());
  write_json "full_f32" (full_matrix ~et:Etype.F32 ~sizes ())

(* Native wall-clock run: only the measured blocked-GEMM experiment.
   --native-smoke shrinks the grid for CI (@native-smoke validates the
   emitted JSON, including the skipped:true marker on hosts without
   AVX). *)
let run_native ~smoke () =
  let sizes = if smoke then [ 128; 256 ] else native_sizes_default in
  write_json "native" (native_bench ~sizes ())

let () =
  let usage =
    "bench/main.exe [--json-out DIR] [--jobs N] [--smoke] [--blocked-smoke] \
     [--native] [--native-smoke]"
  in
  let blocked_smoke = ref false in
  let native = ref false in
  let native_smoke = ref false in
  Arg.parse
    [
      ( "--json-out",
        Arg.Set_string json_out,
        "DIR  write BENCH_*.json artifacts into DIR (default: .)" );
      ( "--jobs",
        Arg.Set_int jobs_flag,
        "N  tuning-sweep parallelism (default: recommended domain count)" );
      ( "--smoke",
        Arg.Set smoke,
        "  reduced CI run: small Figure 18 grid + one small sweep" );
      ( "--blocked-smoke",
        Arg.Set blocked_smoke,
        "  reduced CI run: blocked-DGEMM differential gate + small \
         full-matrix sweep" );
      ( "--native",
        Arg.Set native,
        "  measured run: JIT the blocked GEMM and report wall-clock MFLOPS \
         (BENCH_native.json; skips with a marker on hosts without AVX)" );
      ( "--native-smoke",
        Arg.Set native_smoke,
        "  reduced CI run: native blocked GEMM on a small grid" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    usage;
  jobs_flag := max 1 !jobs_flag;
  Tuner.set_jobs !jobs_flag;
  Fmt.pr "AUGEM reproduction benchmark harness@.";
  Fmt.pr "(modelled CPUs; shapes reproduce the paper's figures/tables)@.@.";
  if !native || !native_smoke then run_native ~smoke:!native_smoke ()
  else if !blocked_smoke then run_blocked_smoke ()
  else if !smoke then run_smoke ()
  else run_full ()
